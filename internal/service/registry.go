package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"zkrownn/internal/core"
	"zkrownn/internal/engine"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/r1cs"
	"zkrownn/internal/watermark"
)

// modelRecord is one registered ownership circuit. The verifying key
// and public metadata persist to the registry directory; the prove
// material (the owner's model and watermark key) lives in memory only —
// after a restart the record still serves verification but needs
// re-registration before it can prove again.
type modelRecord struct {
	ID        string
	Name      string
	Committed bool
	// Slots is the number of suspect-model claim slots the registered
	// circuit carries (1 for plain registrations; K for bundle_slots=K,
	// where one prove job attests K claims with one proof).
	Slots        int
	FracBits     int
	MaxErrors    int
	LayerIndex   int
	Constraints  int
	PublicInputs int
	CreatedAt    time.Time
	// CommittedDigest is the hex Fiat-Shamir digest binding committed-
	// mode proofs to the registered model. Persisted with the metadata so
	// the binding check survives restarts (the model itself does not).
	CommittedDigest string

	VK *groth16.VerifyingKey

	// Prove material; nil on records restored from disk.
	model *nn.Network
	key   *watermark.Key
	quant *nn.QuantizedNetwork
	// art pins the circuit compiled at registration — the compile-once
	// half of the prove path. Prove jobs (registered model or suspect)
	// never recompile: they bind an input assignment and replay the
	// compiled system's solver program. CompiledSystem is immutable, so
	// sharing it across concurrent jobs is safe.
	art *core.Artifact
}

func (rec *modelRecord) canProve() bool { return rec.model != nil && rec.key != nil && rec.art != nil }

// slotCount normalizes the persisted slot field (records written before
// bundle support carry 0).
func (rec *modelRecord) slotCount() int {
	if rec.Slots < 1 {
		return 1
	}
	return rec.Slots
}

func (rec *modelRecord) params() fixpoint.Params {
	return fixpoint.Params{FracBits: rec.FracBits, MagBits: 44}
}

// compile builds the record's extraction circuit once, at registration
// time. The resulting artifact's digest becomes the record ID. A
// multi-slot record compiles the batched circuit: every bundle job
// afterwards only rebinds slot inputs and replays the solver program.
func (rec *modelRecord) compile() (*core.Artifact, error) {
	if rec.model == nil || rec.key == nil || rec.quant == nil {
		return nil, fmt.Errorf("model record has no prove material")
	}
	ck := core.QuantizeKey(rec.key, rec.params())
	if rec.Committed {
		return core.CommittedExtractionCircuit(rec.quant, ck, rec.MaxErrors)
	}
	return core.BatchedExtractionCircuit(rec.quant, ck, rec.MaxErrors, rec.slotCount())
}

// assignmentFor resolves the input assignment for one prove job: the
// registration-time assignment for the registered model (all slots), or
// the suspects' weights rebound slot-by-slot onto the circuit compiled
// at registration. A nil entry keeps the registered model in that slot.
// No compilation happens here — architecture mismatches surface as
// binding errors.
func (rec *modelRecord) assignmentFor(suspects []*nn.Network) (r1cs.Assignment, error) {
	if !rec.canProve() {
		return r1cs.Assignment{}, fmt.Errorf("model %s has no prove material (registered before a restart?); re-register it", rec.ID)
	}
	if len(suspects) == 0 {
		return rec.art.Assignment, nil
	}
	if rec.Committed {
		// Committed circuits bake ρ = H(weights) into the constraint
		// coefficients, so ANY weight change would be a different
		// circuit: committed proofs are bound to the registered model by
		// construction.
		return r1cs.Assignment{}, fmt.Errorf("committed circuits are bound to the registered model; register the suspect model itself (circuit %s)", rec.ID[:12])
	}
	if len(suspects) != rec.slotCount() {
		return r1cs.Assignment{}, fmt.Errorf("bundle carries %d suspect models, circuit %s has %d claim slots", len(suspects), rec.ID[:12], rec.slotCount())
	}
	qs := make([]*nn.QuantizedNetwork, len(suspects))
	for i, suspect := range suspects {
		if suspect == nil {
			continue
		}
		q, err := nn.Quantize(suspect, rec.params())
		if err != nil {
			return r1cs.Assignment{}, err
		}
		qs[i] = q
	}
	// BindSuspectSlots enforces full architecture equality against the
	// shapes pinned in the artifact at compile time.
	asg, err := core.BindSuspectSlots(rec.art, qs)
	if err != nil {
		return r1cs.Assignment{}, fmt.Errorf("suspect model rejected for registered circuit %s: %w", rec.ID[:12], err)
	}
	return asg, nil
}

func (rec *modelRecord) info() ModelInfo {
	return ModelInfo{
		ModelID:      rec.ID,
		Name:         rec.Name,
		Committed:    rec.Committed,
		BundleSlots:  rec.slotCount(),
		FracBits:     rec.FracBits,
		MaxErrors:    rec.MaxErrors,
		Constraints:  rec.Constraints,
		PublicInputs: rec.PublicInputs,
		CreatedAt:    rec.CreatedAt.UTC().Format(time.RFC3339),
		CanProve:     rec.canProve(),
	}
}

// recordMeta is the persisted (public) half of a record.
type recordMeta struct {
	ID              string    `json:"id"`
	Name            string    `json:"name,omitempty"`
	Committed       bool      `json:"committed,omitempty"`
	CommittedDigest string    `json:"committed_digest,omitempty"`
	BundleSlots     int       `json:"bundle_slots,omitempty"`
	FracBits        int       `json:"frac_bits"`
	MaxErrors       int       `json:"max_errors"`
	LayerIndex      int       `json:"layer_index"`
	Constraints     int       `json:"constraints"`
	PublicInputs    int       `json:"public_inputs"`
	CreatedAt       time.Time `json:"created_at"`
}

// registry maps circuit digests to registered models. When dir is
// non-empty, verifying keys (binary WriteTo format, <id>.vk) and
// metadata (<id>.json) write through to disk and are restored on
// startup.
type registry struct {
	dir  string
	logf func(format string, args ...any)

	mu      sync.RWMutex
	records map[string]*modelRecord
}

func newRegistry(dir string, logf func(string, ...any)) (*registry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &registry{dir: dir, logf: logf, records: make(map[string]*modelRecord)}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: registry dir: %w", err)
	}
	if err := r.restore(); err != nil {
		return nil, err
	}
	return r, nil
}

// restore loads every persisted record. Corrupt entries are skipped
// (they only cost a re-registration), not fatal — but loudly: a
// vanished record means 404s for verifiers who relied on the
// persisted VK, so the operator must hear about it.
func (r *registry) restore() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("service: registry dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		rec, err := r.loadRecord(id)
		if err != nil {
			r.logf("service: registry: skipping corrupt record %s: %v", id, err)
			continue
		}
		r.records[rec.ID] = rec
	}
	return nil
}

func (r *registry) loadRecord(id string) (*modelRecord, error) {
	metaBytes, err := os.ReadFile(filepath.Join(r.dir, id+".json"))
	if err != nil {
		return nil, err
	}
	var meta recordMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, err
	}
	if meta.ID != id {
		return nil, fmt.Errorf("service: registry meta %s names id %s", id, meta.ID)
	}
	f, err := os.Open(filepath.Join(r.dir, id+".vk"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	vk := new(groth16.VerifyingKey)
	if _, err := vk.ReadFrom(bufio.NewReader(f)); err != nil {
		return nil, err
	}
	return &modelRecord{
		ID:              meta.ID,
		Name:            meta.Name,
		Committed:       meta.Committed,
		CommittedDigest: meta.CommittedDigest,
		Slots:           meta.BundleSlots,
		FracBits:        meta.FracBits,
		MaxErrors:       meta.MaxErrors,
		LayerIndex:      meta.LayerIndex,
		Constraints:     meta.Constraints,
		PublicInputs:    meta.PublicInputs,
		CreatedAt:       meta.CreatedAt,
		VK:              vk,
	}, nil
}

// put registers (or refreshes) a record, persisting the verifying key
// and metadata when a directory is configured. It reports whether the
// digest was already present.
func (r *registry) put(rec *modelRecord) (existed bool, err error) {
	r.mu.Lock()
	_, existed = r.records[rec.ID]
	r.records[rec.ID] = rec
	r.mu.Unlock()

	if r.dir == "" {
		return existed, nil
	}
	if err := engine.AtomicWriteFile(filepath.Join(r.dir, rec.ID+".vk"), func(w io.Writer) error {
		_, err := rec.VK.WriteTo(w)
		return err
	}); err != nil {
		return existed, fmt.Errorf("service: persist vk: %w", err)
	}
	meta := recordMeta{
		ID:              rec.ID,
		Name:            rec.Name,
		Committed:       rec.Committed,
		CommittedDigest: rec.CommittedDigest,
		BundleSlots:     rec.Slots,
		FracBits:        rec.FracBits,
		MaxErrors:       rec.MaxErrors,
		LayerIndex:      rec.LayerIndex,
		Constraints:     rec.Constraints,
		PublicInputs:    rec.PublicInputs,
		CreatedAt:       rec.CreatedAt,
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return existed, err
	}
	if err := engine.AtomicWriteFile(filepath.Join(r.dir, rec.ID+".json"), func(w io.Writer) error {
		_, err := w.Write(metaBytes)
		return err
	}); err != nil {
		return existed, fmt.Errorf("service: persist meta: %w", err)
	}
	return existed, nil
}

func (r *registry) get(id string) (*modelRecord, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.records[id]
	return rec, ok
}

func (r *registry) list() []*modelRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*modelRecord, 0, len(r.records))
	for _, rec := range r.records {
		out = append(out, rec)
	}
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}
