package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/dataset"
	"zkrownn/internal/engine"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/watermark"
)

// testFixture builds a tiny untrained MLP and a matching watermark key.
// MaxErrors is set to the full signature width in registration, so the
// ownership claim bit is 1 without any (slow) embedding fine-tuning —
// the service mechanics, not watermark fidelity, are under test.
func testFixture(t *testing.T) (modelJSON, keyJSON []byte) {
	return testFixtureSeed(t, 1)
}

// testFixtureSeed varies the model weights while keeping the
// architecture AND the watermark key fixed — the key's signature enters
// the circuit as constants, so only a fixed key keeps the circuit
// digest stable across seeds.
func testFixtureSeed(t *testing.T, seed int64) (modelJSON, keyJSON []byte) {
	t.Helper()
	modelRng := rand.New(rand.NewSource(seed))
	keyRng := rand.New(rand.NewSource(1000))
	ds, err := dataset.Generate(dataset.Config{
		Samples: 30, Dim: 6, Classes: 2, ClusterStd: 0.3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewMLP(nn.MLPConfig{In: 6, Hidden: []int{4}, Classes: 2}, modelRng)
	key, err := watermark.GenerateKey(keyRng, 1, 0, net.Layers[1].OutputSize(), 4, 2, ds.OfClass(0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	keyJSON, err = json.Marshal(key)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), keyJSON
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, data)
		}
	}
	return resp
}

func register(t *testing.T, baseURL string, maxErrors int) RegisterResponse {
	t.Helper()
	modelJSON, keyJSON := testFixture(t)
	resp, data := postJSON(t, baseURL+"/v1/models", RegisterRequest{
		Name:      "test-mlp",
		Model:     modelJSON,
		Key:       keyJSON,
		MaxErrors: maxErrors,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}
	var reg RegisterResponse
	if err := json.Unmarshal(data, &reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

func waitJob(t *testing.T, baseURL, jobID string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var js JobStatus
		resp := getJSON(t, baseURL+"/v1/jobs/"+jobID, &js)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: status %d", resp.StatusCode)
		}
		switch js.Status {
		case JobDone, JobFailed:
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", jobID, js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEndToEndOverTheWire(t *testing.T) {
	srv, ts := newTestServer(t, Options{VerifyWindow: 300 * time.Millisecond})

	// Register: circuit compiled, setup run, VK returned.
	reg := register(t, ts.URL, 4)
	if reg.ModelID == "" || reg.VK == nil {
		t.Fatalf("register response incomplete: %+v", reg)
	}
	if reg.Constraints == 0 || reg.PublicInputs == 0 {
		t.Fatalf("register reported empty circuit: %+v", reg)
	}

	// Registry endpoints.
	var info ModelResponse
	if resp := getJSON(t, ts.URL+"/v1/models/"+reg.ModelID, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("get model: %d", resp.StatusCode)
	}
	if !info.CanProve || info.ModelID != reg.ModelID {
		t.Fatalf("model info wrong: %+v", info.ModelInfo)
	}

	// Async prove: submit, poll to completion.
	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove submit: status %d: %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}
	if js.Proof == nil || len(js.PublicInputs) == 0 {
		t.Fatal("finished job has no proof/public inputs")
	}
	// Registration already ran setup for this digest → the job must hit
	// the key cache.
	if !js.SetupCached {
		t.Fatal("prove job re-ran trusted setup despite registration warm-up")
	}

	// Raw binary proof fetch must agree with the JSON envelope.
	rawResp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/proof")
	if err != nil {
		t.Fatal(err)
	}
	defer rawResp.Body.Close()
	if rawResp.StatusCode != http.StatusOK {
		t.Fatalf("proof fetch: %d", rawResp.StatusCode)
	}
	var rawProof groth16.Proof
	if _, err := rawProof.ReadFrom(rawResp.Body); err != nil {
		t.Fatal(err)
	}
	if !rawProof.Ar.Equal(&js.Proof.Ar) || !rawProof.Bs.Equal(&js.Proof.Bs) || !rawProof.Krs.Equal(&js.Proof.Krs) {
		t.Fatal("binary proof differs from JSON proof")
	}

	// Verify over the wire, concurrently: the micro-batcher must fold
	// the requests into one BatchVerify pairing product.
	const verifiers = 4
	results := make([]VerifyResponse, verifiers)
	var wg sync.WaitGroup
	for i := 0; i < verifiers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
				Proof:        js.Proof,
				PublicInputs: js.PublicInputs,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("verify %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			if err := json.Unmarshal(data, &results[i]); err != nil {
				t.Errorf("verify %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	coalesced := 0
	for i, vr := range results {
		if !vr.Valid || !vr.Claim {
			t.Fatalf("verify %d rejected honest proof: %+v", i, vr)
		}
		if vr.BatchSize >= 2 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatal("no verify request reported a coalesced batch")
	}

	// /stats must corroborate: at least one BatchVerify call folded ≥ 2
	// requests, and the engine/queue counters add up.
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Service.VerifyBatchCalls < 1 {
		t.Fatalf("stats report no batch-verify calls: %+v", stats.Service)
	}
	if stats.Service.VerifyMaxBatch < 2 {
		t.Fatalf("stats max batch %d, want >= 2", stats.Service.VerifyMaxBatch)
	}
	if stats.Service.VerifyRequests != verifiers {
		t.Fatalf("stats count %d verify requests, want %d", stats.Service.VerifyRequests, verifiers)
	}
	if stats.Engine.Setups != 1 || stats.Engine.Proves != 1 {
		t.Fatalf("engine stats: %+v, want 1 setup and 1 prove", stats.Engine)
	}
	if stats.Service.JobsCompleted != 1 || stats.Service.JobsFailed != 0 {
		t.Fatalf("job stats: %+v", stats.Service)
	}

	// Idempotent re-registration: same digest, same VK, no new setup.
	reg2 := register(t, ts.URL, 4)
	if reg2.ModelID != reg.ModelID || !reg2.AlreadyRegistered || !reg2.SetupCached {
		t.Fatalf("re-registration not idempotent: %+v", reg2)
	}

	// Health.
	var health HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}
	_ = srv
}

func TestVerifyRejectsMalformedAndTampered(t *testing.T) {
	_, ts := newTestServer(t, Options{VerifyWindow: time.Millisecond})
	reg := register(t, ts.URL, 4)

	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}

	// Tampered proof bytes: the envelope decoder's subgroup check must
	// surface as 400, not 500.
	proofJSON, err := json.Marshal(js.Proof)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Format int    `json:"format"`
		Data   string `json:"data"`
	}
	if err := json.Unmarshal(proofJSON, &env); err != nil {
		t.Fatal(err)
	}
	tampered := []byte(fmt.Sprintf(
		`{"proof":{"format":%d,"data":"%s"},"public_inputs":%s}`,
		env.Format, "AAAA"+env.Data[4:], mustJSON(t, js.PublicInputs)))
	hresp, err := http.Post(ts.URL+"/v1/models/"+reg.ModelID+"/verify", "application/json", bytes.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered proof: status %d (%s), want 400", hresp.StatusCode, body)
	}

	// Plain garbage body.
	hresp, err = http.Post(ts.URL+"/v1/models/"+reg.ModelID+"/verify", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", hresp.StatusCode)
	}

	// Wrong public-input arity.
	resp, data = postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
		Proof:        js.Proof,
		PublicInputs: js.PublicInputs[:1],
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short public inputs: status %d (%s), want 400", resp.StatusCode, data)
	}

	// A well-formed proof that fails verification (wrong instance) is
	// NOT a client error: 200 with valid=false.
	wrong := append(groth16.PublicInputs(nil), js.PublicInputs...)
	wrong[0].SetUint64(987654321)
	resp, data = postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
		Proof:        js.Proof,
		PublicInputs: wrong,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wrong-instance verify: status %d (%s), want 200", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid {
		t.Fatal("proof accepted under tampered public inputs")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestQueueOverflowBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Options{QueueDepth: 1, ProveBatch: 1})

	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testJobStall = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	reg := register(t, ts.URL, 4)
	proveURL := ts.URL + "/v1/models/" + reg.ModelID + "/prove"

	// First job: picked up by the dispatcher, which stalls on the hook.
	resp, data := postJSON(t, proveURL, ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d %s", resp.StatusCode, data)
	}
	<-entered

	// Second job parks in the (depth-1) queue.
	resp, data = postJSON(t, proveURL, ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d %s", resp.StatusCode, data)
	}

	// Third job must bounce with 429.
	resp, data = postJSON(t, proveURL, ProveRequest{})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d (%s), want 429", resp.StatusCode, data)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Service.JobsRejected != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", stats.Service.JobsRejected)
	}

	// Release the dispatcher: both accepted jobs must finish.
	close(release)
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err == nil && acc.JobID != "" {
		t.Fatal("rejected job must not carry a job id")
	}
	getJSON(t, ts.URL+"/v1/stats", &stats) // refresh after release
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/stats", &stats)
		if stats.Service.JobsCompleted == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accepted jobs did not finish: %+v", stats.Service)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	reg := register(t, ts.URL, 4)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// All routes answer 503 after Close, including verifies and proves.
	resp, _ := http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	presp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("prove after close: %d (%s), want 503", presp.StatusCode, data)
	}
	// The server-owned engine is closed too: even an empty request is
	// rejected with the lifecycle sentinel before content validation.
	if _, perr := srv.Engine().Prove(engine.Request{}); !errors.Is(perr, engine.ErrClosed) {
		t.Fatalf("engine after service Close: err = %v, want engine.ErrClosed", perr)
	}
	// Idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	srv1, err := New(Options{RegistryDir: dir, VerifyWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	reg := register(t, ts1.URL, 4)
	resp, data := postJSON(t, ts1.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts1.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}
	ts1.Close()
	srv1.Close()

	// Restart over the same registry directory: the record (and VK)
	// must be restored; verification works, proving needs re-registration.
	srv2, err := New(Options{RegistryDir: dir, VerifyWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()

	var info ModelResponse
	if resp := getJSON(t, ts2.URL+"/v1/models/"+reg.ModelID, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("restored model missing: %d", resp.StatusCode)
	}
	if info.CanProve {
		t.Fatal("restored record must not claim prove material")
	}
	resp, data = postJSON(t, ts2.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("prove on restored record: %d (%s), want 409", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts2.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
		Proof:        js.Proof,
		PublicInputs: js.PublicInputs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify on restored record: %d (%s)", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid || !vr.Claim {
		t.Fatalf("restored VK rejected honest proof: %+v", vr)
	}
}

// registerSeed registers the seeded fixture in committed mode.
func registerCommitted(t *testing.T, baseURL string, seed int64) RegisterResponse {
	t.Helper()
	modelJSON, keyJSON := testFixtureSeed(t, seed)
	resp, data := postJSON(t, baseURL+"/v1/models", RegisterRequest{
		Model: modelJSON, Key: keyJSON, MaxErrors: 4, Committed: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register committed: status %d: %s", resp.StatusCode, data)
	}
	var reg RegisterResponse
	if err := json.Unmarshal(data, &reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestCommittedDigestBinding exercises the committed-model variant: the
// proof's public digest must bind the registered model, the binding
// must survive a server restart (it persists with the metadata, not the
// model), and a proof for a *different* same-architecture model must be
// rejected by the digest check even though the Groth16 equation holds.
func TestCommittedDigestBinding(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Options{RegistryDir: dir, VerifyWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)

	reg := registerCommitted(t, ts1.URL, 1)
	if !reg.Committed {
		t.Fatalf("registration lost committed flag: %+v", reg)
	}
	resp, data := postJSON(t, ts1.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts1.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}
	verify := func(ts *httptest.Server) VerifyResponse {
		resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
			Proof: js.Proof, PublicInputs: js.PublicInputs,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify: %d %s", resp.StatusCode, data)
		}
		var vr VerifyResponse
		if err := json.Unmarshal(data, &vr); err != nil {
			t.Fatal(err)
		}
		return vr
	}
	if vr := verify(ts1); !vr.Valid || !vr.Claim {
		t.Fatalf("committed verify rejected honest proof: %+v", vr)
	}
	ts1.Close()
	srv1.Close()

	// Restart: the record is verify-only, but the digest binding must
	// still be enforced (it was persisted alongside the VK).
	srv2, err := New(Options{RegistryDir: dir, VerifyWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	if vr := verify(ts2); !vr.Valid || !vr.Claim {
		t.Fatalf("restored committed verify rejected honest proof: %+v", vr)
	}

	// A different model of the same architecture gets a *different*
	// committed circuit: ρ = H(weights) is baked into the constraint
	// coefficients, so committed model IDs are per-model, not
	// per-architecture — two registrations must not collide.
	reg2 := registerCommitted(t, ts2.URL, 99)
	if reg2.ModelID == reg.ModelID {
		t.Fatal("different committed models must not share a circuit digest")
	}

	// An instance naming a different digest must be rejected.
	wrong := append(groth16.PublicInputs(nil), js.PublicInputs...)
	wrong[0].SetUint64(42)
	resp, data = postJSON(t, ts2.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
		Proof: js.Proof, PublicInputs: wrong,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest-tampered verify: %d %s", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid {
		t.Fatalf("instance with a foreign digest accepted: %+v", vr)
	}
}

// TestCheckCommittedDigest pins the binding helper itself: the branch
// that guards proofs which satisfy the Groth16 equation under the
// registered VK but name a different model digest in the instance.
func TestCheckCommittedDigest(t *testing.T) {
	var d fr.Element
	d.SetUint64(7)
	db := d.Bytes()
	rec := &modelRecord{CommittedDigest: fmt.Sprintf("%x", db[:])}

	var claim fr.Element
	claim.SetOne()
	if err := checkCommittedDigest(rec, groth16.PublicInputs{d, claim}); err != nil {
		t.Fatalf("matching digest rejected: %v", err)
	}
	var other fr.Element
	other.SetUint64(8)
	if err := checkCommittedDigest(rec, groth16.PublicInputs{other, claim}); err == nil {
		t.Fatal("mismatched digest accepted")
	}
	if err := checkCommittedDigest(&modelRecord{}, groth16.PublicInputs{d, claim}); err == nil {
		t.Fatal("record without a pinned digest accepted")
	}
	if err := checkCommittedDigest(rec, nil); err == nil {
		t.Fatal("empty instance accepted")
	}
}

// TestConcurrentClients races registration, proving, verification, and
// stats polling from many goroutines — run under -race in CI.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Options{VerifyWindow: 5 * time.Millisecond, QueueDepth: 64})
	reg := register(t, ts.URL, 4)

	// One finished proof to verify against.
	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}

	var wg sync.WaitGroup
	jobIDs := make(chan string, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
			if resp.StatusCode == http.StatusAccepted {
				var a ProveAccepted
				if err := json.Unmarshal(data, &a); err == nil {
					jobIDs <- a.JobID
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
				Proof:        js.Proof,
				PublicInputs: js.PublicInputs,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("verify: %d %s", resp.StatusCode, data)
				return
			}
			var vr VerifyResponse
			if err := json.Unmarshal(data, &vr); err != nil || !vr.Valid {
				t.Errorf("concurrent verify rejected: %+v (%v)", vr, err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var stats StatsResponse
			getJSON(t, ts.URL+"/v1/stats", &stats)
			var infos []ModelInfo
			getJSON(t, ts.URL+"/v1/models", &infos)
		}()
	}
	wg.Wait()
	close(jobIDs)
	for id := range jobIDs {
		if js := waitJob(t, ts.URL, id); js.Status != JobDone {
			t.Fatalf("concurrent job %s failed: %s", id, js.Error)
		}
	}
}

// TestCompileOnceSolveMany is the compile-once / solve-many acceptance
// check at the service level: one registration compiles the circuit
// exactly once, and N prove jobs — including suspect-model jobs — only
// rebind inputs and replay the solver program (engine solves == N,
// circuits_compiled == 1).
func TestCompileOnceSolveMany(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	reg := register(t, ts.URL, 4)

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Service.CircuitsCompiled != 1 {
		t.Fatalf("registration compiled %d circuits, want 1", st.Service.CircuitsCompiled)
	}

	// A different model with the SAME architecture (and the same fixed
	// key): proving it must reuse the registered compiled circuit.
	suspectJSON, _ := testFixtureSeed(t, 77)

	const jobs = 4
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		body := ProveRequest{}
		if i == jobs-1 {
			body.SuspectModel = suspectJSON
		}
		resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("prove %d: %d %s", i, resp.StatusCode, data)
		}
		var acc ProveAccepted
		if err := json.Unmarshal(data, &acc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, acc.JobID)
	}

	var registeredPub, suspectPub groth16.PublicInputs
	for i, id := range ids {
		js := waitJob(t, ts.URL, id)
		if js.Status != JobDone {
			t.Fatalf("job %s: %s (%s)", id, js.Status, js.Error)
		}
		if js.SolveMS <= 0 {
			t.Fatalf("job %s reports no solve time", id)
		}
		switch i {
		case 0:
			registeredPub = js.PublicInputs
		case jobs - 1:
			suspectPub = js.PublicInputs
		}
		// Every proof must verify against the registered key.
		resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
			Proof: js.Proof, PublicInputs: js.PublicInputs,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify %s: %d %s", id, resp.StatusCode, data)
		}
		var vr VerifyResponse
		if err := json.Unmarshal(data, &vr); err != nil {
			t.Fatal(err)
		}
		if !vr.Valid {
			t.Fatalf("job %s proof rejected: %s", id, vr.Error)
		}
	}

	// The suspect instance must actually carry the suspect's weights.
	same := true
	for i := range registeredPub {
		if !registeredPub[i].Equal(&suspectPub[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("suspect job proved the registered weights")
	}

	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Service.CircuitsCompiled != 1 {
		t.Fatalf("after %d jobs the service compiled %d circuits, want exactly 1", jobs, st.Service.CircuitsCompiled)
	}
	if st.Engine.Solves != jobs {
		t.Fatalf("engine ran %d solves, want %d", st.Engine.Solves, jobs)
	}
	if st.Engine.Setups != 1 {
		t.Fatalf("engine ran %d setups, want 1", st.Engine.Setups)
	}
}

// TestSuspectArchitectureMismatchFails: a suspect whose shape differs
// from the registered architecture is rejected at input-binding time
// (no recompilation happens to discover this).
func TestSuspectArchitectureMismatchFails(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	reg := register(t, ts.URL, 4)

	wide := nn.NewMLP(nn.MLPConfig{In: 6, Hidden: []int{5}, Classes: 2}, rand.New(rand.NewSource(5)))
	var buf bytes.Buffer
	if err := wide.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{SuspectModel: buf.Bytes()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobFailed {
		t.Fatalf("mismatched suspect job finished as %s", js.Status)
	}
	if !strings.Contains(js.Error, "architecture mismatch") {
		t.Fatalf("unexpected error: %s", js.Error)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Service.CircuitsCompiled != 1 {
		t.Fatalf("mismatch handling compiled circuits: %d", st.Service.CircuitsCompiled)
	}
}

// TestTracedJobServesChromeTimeline: a job submitted with trace=true
// records the prover span timeline and serves it as Chrome trace-event
// JSON at /v1/jobs/{id}/trace; untraced jobs 404 there, and the
// /metrics endpoint carries the prover series the job just observed.
func TestTracedJobServesChromeTimeline(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	reg := register(t, ts.URL, 4)

	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{Trace: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("traced job finished as %s: %s", js.Status, js.Error)
	}
	if !js.HasTrace {
		t.Fatal("trace=true job reports has_trace=false")
	}

	tresp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d", tresp.StatusCode)
	}
	if ct := tresp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("trace content type %q", ct)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Dur  float64 `json:"dur"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a Chrome event array: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"engine/solve", "engine/prove", "msm/A", "quotient"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %d events)", want, len(events))
		}
	}

	// An untraced job has no timeline to serve.
	resp2, data2 := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp2.StatusCode, data2)
	}
	var acc2 ProveAccepted
	if err := json.Unmarshal(data2, &acc2); err != nil {
		t.Fatal(err)
	}
	if js2 := waitJob(t, ts.URL, acc2.JobID); js2.HasTrace {
		t.Fatal("untraced job reports has_trace=true")
	}
	if r, err := http.Get(ts.URL + "/v1/jobs/" + acc2.JobID + "/trace"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("untraced job trace fetch: %d, want 404", r.StatusCode)
		}
	}

	// The prover series the jobs observed are exposed on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"zkrownn_prove_seconds_count", "zkrownn_queue_depth", "zkrownn_jobs_completed_total"} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}
