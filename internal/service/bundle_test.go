package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zkrownn/internal/groth16"
)

// registerBundle registers the shared test fixture with bundle_slots
// claim slots.
func registerBundle(t *testing.T, baseURL string, maxErrors, slots int) RegisterResponse {
	t.Helper()
	modelJSON, keyJSON := testFixture(t)
	resp, data := postJSON(t, baseURL+"/v1/models", RegisterRequest{
		Name:        "bundle-mlp",
		Model:       modelJSON,
		Key:         keyJSON,
		MaxErrors:   maxErrors,
		BundleSlots: slots,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}
	var reg RegisterResponse
	if err := json.Unmarshal(data, &reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestBundleProveEndToEnd is the acceptance path: one proof carrying
// K=4 suspect-model claims through register → bundle prove → verify,
// with the circuit compiled exactly once for the whole bundle.
func TestBundleProveEndToEnd(t *testing.T) {
	const slots = 4
	_, ts := newTestServer(t, Options{VerifyWindow: time.Millisecond})

	reg := registerBundle(t, ts.URL, 4, slots)
	if reg.BundleSlots != slots {
		t.Fatalf("registered bundle_slots %d, want %d", reg.BundleSlots, slots)
	}
	// K weight slots + K claims on the wire.
	if reg.PublicInputs <= slots {
		t.Fatalf("batched circuit has %d public inputs, expected slot weights + %d claims", reg.PublicInputs, slots)
	}

	// Bundle: three distinct same-architecture suspects + one null slot
	// (registered model).
	var suspects []json.RawMessage
	for seed := int64(2); seed <= 4; seed++ {
		modelJSON, _ := testFixtureSeed(t, seed)
		suspects = append(suspects, modelJSON)
	}
	suspects = append(suspects, json.RawMessage("null"))

	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{
		SuspectModels: suspects,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bundle prove: status %d: %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("bundle job failed: %s", js.Error)
	}
	if js.Proof == nil {
		t.Fatal("bundle job has no proof")
	}
	if len(js.Claims) != slots {
		t.Fatalf("bundle job reports %d claims, want %d", len(js.Claims), slots)
	}
	// maxErrors = signature width → every suspect's claim is 1.
	for s, c := range js.Claims {
		if !c {
			t.Fatalf("slot %d claim 0 under full BER tolerance", s)
		}
	}
	if !js.SetupCached {
		t.Fatal("bundle job re-ran trusted setup despite registration warm-up")
	}

	// ONE proof verifies all K claims over the wire.
	resp, data = postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
		Proof:        js.Proof,
		PublicInputs: js.PublicInputs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d: %s", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid || !vr.Claim {
		t.Fatalf("bundle proof rejected: %+v", vr)
	}
	if len(vr.Claims) != slots {
		t.Fatalf("verify reports %d claims, want %d", len(vr.Claims), slots)
	}
	for s, c := range vr.Claims {
		if !c {
			t.Fatalf("verify slot %d claim 0", s)
		}
	}

	// The whole bundle cost exactly one circuit compilation (at
	// registration), one setup, and one prove.
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Service.CircuitsCompiled != 1 {
		t.Fatalf("circuits_compiled = %d across the bundle, want 1", stats.Service.CircuitsCompiled)
	}
	if stats.Engine.Setups != 1 {
		t.Fatalf("engine setups = %d, want 1", stats.Engine.Setups)
	}
	if stats.Engine.Proves != 1 {
		t.Fatalf("engine proves = %d for a %d-claim bundle, want 1", stats.Engine.Proves, slots)
	}
}

// TestBundleRequestValidation covers the wire-level rejections around
// bundle registration and submission.
func TestBundleRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	modelJSON, keyJSON := testFixture(t)

	// bundle_slots out of range.
	resp, _ := postJSON(t, ts.URL+"/v1/models", RegisterRequest{
		Model: modelJSON, Key: keyJSON, MaxErrors: 4, BundleSlots: -2,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative bundle_slots: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/models", RegisterRequest{
		Model: modelJSON, Key: keyJSON, MaxErrors: 4, BundleSlots: maxBundleSlots + 1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized bundle_slots: status %d, want 400", resp.StatusCode)
	}

	// Committed circuits cannot carry bundle slots.
	resp, data := postJSON(t, ts.URL+"/v1/models", RegisterRequest{
		Model: modelJSON, Key: keyJSON, MaxErrors: 4, Committed: true, BundleSlots: 2,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("committed bundle: status %d (%s), want 400", resp.StatusCode, data)
	}

	reg := registerBundle(t, ts.URL, 4, 2)
	proveURL := ts.URL + "/v1/models/" + reg.ModelID + "/prove"
	suspect, _ := testFixtureSeed(t, 2)

	// Bundle length must match the registered slot count.
	resp, data = postJSON(t, proveURL, ProveRequest{
		SuspectModels: []json.RawMessage{suspect},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short bundle: status %d (%s), want 400", resp.StatusCode, data)
	}
	// The legacy single-suspect field cannot drive a multi-slot circuit.
	resp, data = postJSON(t, proveURL, ProveRequest{SuspectModel: suspect})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("single suspect on 2-slot model: status %d (%s), want 400", resp.StatusCode, data)
	}
	// Both suspect fields at once.
	resp, data = postJSON(t, proveURL, ProveRequest{
		SuspectModel:  suspect,
		SuspectModels: []json.RawMessage{suspect, suspect},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both suspect fields: status %d (%s), want 400", resp.StatusCode, data)
	}
	// Malformed model inside one slot.
	resp, data = postJSON(t, proveURL, ProveRequest{
		SuspectModels: []json.RawMessage{suspect, json.RawMessage(`{"nope":1}`)},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage slot model: status %d (%s), want 400", resp.StatusCode, data)
	}
	// An all-null bundle degenerates to proving the registered model.
	resp, data = postJSON(t, proveURL, ProveRequest{
		SuspectModels: []json.RawMessage{json.RawMessage("null"), json.RawMessage("null")},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("all-null bundle: status %d (%s), want 202", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if js := waitJob(t, ts.URL, acc.JobID); js.Status != JobDone || len(js.Claims) != 2 {
		t.Fatalf("all-null bundle job: status %s claims %v", js.Status, js.Claims)
	}
}

// TestBundleClaimForgeryRejected: rewriting claim bits in a bundle
// instance must break Groth16 verification — per-slot verdicts are
// constrained, not asserted.
func TestBundleClaimForgeryRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{VerifyWindow: time.Millisecond})
	reg := registerBundle(t, ts.URL, 4, 2)
	suspect, _ := testFixtureSeed(t, 2)
	resp, data := postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{
		SuspectModels: []json.RawMessage{json.RawMessage("null"), suspect},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}

	// Flip the last claim bit (1 → 0 here; the direction is irrelevant —
	// any substitution must invalidate the proof).
	forged := append(groth16.PublicInputs(nil), js.PublicInputs...)
	forged[len(forged)-1].SetUint64(0)
	resp, data = postJSON(t, ts.URL+"/v1/models/"+reg.ModelID+"/verify", VerifyRequest{
		Proof:        js.Proof,
		PublicInputs: forged,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: %d %s", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid {
		t.Fatal("forged claim bit accepted")
	}
}

// TestVerifyUnderWrongModelRejected: a proof for circuit A checked
// against circuit B's verifying key (same architecture, different BER
// tolerance → different circuit) must come back valid=false.
func TestVerifyUnderWrongModelRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{VerifyWindow: time.Millisecond})
	regA := register(t, ts.URL, 4)
	regB := register(t, ts.URL, 3) // different maxErrors → different circuit + VK
	if regA.ModelID == regB.ModelID {
		t.Fatal("fixture circuits unexpectedly share a digest")
	}
	resp, data := postJSON(t, ts.URL+"/v1/models/"+regA.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove: %d %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, ts.URL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("job failed: %s", js.Error)
	}
	resp, data = postJSON(t, ts.URL+"/v1/models/"+regB.ModelID+"/verify", VerifyRequest{
		Proof:        js.Proof,
		PublicInputs: js.PublicInputs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross-model verify: %d %s", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid {
		t.Fatal("proof accepted under the wrong model's verifying key")
	}
}

// TestBundleSlotsPersistAcrossRestart: the slot count is part of the
// persisted record metadata, so a restarted registry still decodes
// per-slot claims for verification-only records.
func TestBundleSlotsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	srv1, err := New(Options{RegistryDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	reg := registerBundle(t, ts1.URL, 4, 3)
	ts1.Close()
	srv1.Close()

	srv2, err := New(Options{RegistryDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	var info ModelResponse
	if resp := getJSON(t, ts2.URL+"/v1/models/"+reg.ModelID, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("restored model missing: %d", resp.StatusCode)
	}
	if info.BundleSlots != 3 {
		t.Fatalf("restored bundle_slots = %d, want 3", info.BundleSlots)
	}
	if info.CanProve {
		t.Fatal("restored record claims prove material")
	}
}
