package engine

import (
	"bufio"
	"container/list"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"zkrownn/internal/groth16"
	"zkrownn/internal/r1cs"
)

// KeyPair bundles the Groth16 keys produced by one trusted setup. In
// in-memory mode PK is populated; in streamed (out-of-core) mode PK is
// nil and Stream serves the same material from disk. Exactly one of the
// two is non-nil; VK is always resident.
type KeyPair struct {
	PK *groth16.ProvingKey
	VK *groth16.VerifyingKey
	// Stream is the disk-backed proving key used when the engine's
	// memory budget ruled out materializing PK.
	Stream *groth16.StreamedProvingKey
	// CSFile, when non-nil, is the disk-resident constraint system the
	// keys were set up from: the memory budget ruled out keeping the CSR
	// matrices (and the solved witness) resident too, so proves stream
	// constraint rows from this file and spill the witness to disk. Like
	// Stream, it shares the cache entry's lifetime.
	CSFile *r1cs.CompiledSystemFile
}

// Streamed reports whether the proving key is disk-backed.
func (kp *KeyPair) Streamed() bool { return kp.Stream != nil }

// Spilled reports whether proves also stream the constraint system
// from disk and spill the solver tape (full out-of-core mode).
func (kp *KeyPair) Spilled() bool { return kp.CSFile != nil }

// PKSizeBytes returns the serialized size of the proving key in
// whichever backend holds it: the compressed WriteTo size for an
// in-memory key, the raw on-disk size for a streamed one.
func (kp *KeyPair) PKSizeBytes() int64 {
	switch {
	case kp.PK != nil:
		return kp.PK.SizeBytes()
	case kp.Stream != nil:
		return kp.Stream.SizeBytes()
	}
	return 0
}

// keyCache is a circuit-digest-keyed LRU of Groth16 key pairs with
// optional write-through persistence to a directory. Proving keys are
// large (tens of MB at paper scale), so the in-memory tier is bounded by
// entry count and the disk tier — when enabled — survives process
// restarts, letting a redeployed prover service skip every trusted setup
// it has ever run.
//
// Each entry also retains the compiled constraint system the keys were
// set up for: key and circuit share a lifetime (both are functions of
// the digest), so solve-many callers can address the circuit by digest
// without re-sending the CSR matrices. The circuit is memory-only — the
// disk tier persists keys, and a disk hit re-attaches whatever compiled
// system the triggering request carried.
type keyCache struct {
	mu      sync.Mutex
	maxSize int
	dir     string // "" disables the disk tier
	order   *list.List
	entries map[string]*list.Element
}

type cacheEntry struct {
	digest string
	keys   *KeyPair
	cs     *r1cs.CompiledSystem
}

func newKeyCache(maxSize int, dir string) *keyCache {
	return &keyCache{
		maxSize: maxSize,
		dir:     dir,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// getMem returns the key pair for a digest from the in-memory LRU,
// attaching cs (when non-nil) to the entry so later digest-only
// requests can find the circuit.
func (c *keyCache) getMem(digest string, cs *r1cs.CompiledSystem) (*KeyPair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		if entry.cs == nil {
			entry.cs = cs
		}
		return entry.keys, true
	}
	return nil, false
}

// circuit returns the compiled system cached beside the keys for a
// digest, without disturbing the LRU order more than a lookup must.
func (c *keyCache) circuit(digest string) (*r1cs.CompiledSystem, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.order.MoveToFront(el)
		if cs := el.Value.(*cacheEntry).cs; cs != nil {
			return cs, true
		}
	}
	return nil, false
}

// getDisk loads a key pair from the disk tier (if configured) and
// promotes it to memory. Callers are expected to hold the engine's
// per-digest singleflight so a cold burst deserializes a key file once.
func (c *keyCache) getDisk(digest string, cs *r1cs.CompiledSystem) (*KeyPair, bool) {
	if c.dir == "" {
		return nil, false
	}
	keys, err := c.loadDisk(digest)
	if err != nil {
		return nil, false
	}
	c.putMem(digest, keys, cs)
	return keys, true
}

// put stores a fresh key pair in memory and, when a directory is
// configured, on disk. Disk write failures are returned but leave the
// memory tier populated — the engine keeps working, just without
// persistence.
func (c *keyCache) put(digest string, keys *KeyPair, cs *r1cs.CompiledSystem) error {
	c.putMem(digest, keys, cs)
	if c.dir == "" {
		return nil
	}
	return c.storeDisk(digest, keys)
}

func (c *keyCache) putMem(digest string, keys *KeyPair, cs *r1cs.CompiledSystem) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		entry.keys = keys
		if cs != nil {
			entry.cs = cs
		}
		return
	}
	el := c.order.PushFront(&cacheEntry{digest: digest, keys: keys, cs: cs})
	c.entries[digest] = el
	for c.maxSize > 0 && c.order.Len() > c.maxSize {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).digest)
	}
}

// len reports the number of in-memory entries.
func (c *keyCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// clear drops every in-memory entry (the disk tier is untouched).
func (c *keyCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[string]*list.Element)
}

func (c *keyCache) pkPath(digest string) string {
	return filepath.Join(c.dir, digest+".pk")
}

func (c *keyCache) vkPath(digest string) string {
	return filepath.Join(c.dir, digest+".vk")
}

// loadDisk reads a cached key pair, validating each file's integrity
// frame before trusting it — a truncated or corrupted file surfaces
// here as an error, which getDisk turns into a miss. The proving key
// uses the raw (uncompressed) encoding: loading it costs a linear pass
// of cheap field decodings instead of one modular square root per
// point, which would otherwise make a disk hit slower than re-running
// setup for small circuits. The directory is the operator's own
// material, so the weaker G2 checks of the raw format are acceptable.
func (c *keyCache) loadDisk(digest string) (*KeyPair, error) {
	pkf, pkr, err := openFramed(c.pkPath(digest))
	if err != nil {
		return nil, fmt.Errorf("engine: cached proving key %s: %w", digest, err)
	}
	defer pkf.Close()
	vkf, vkr, err := openFramed(c.vkPath(digest))
	if err != nil {
		return nil, fmt.Errorf("engine: cached verifying key %s: %w", digest, err)
	}
	defer vkf.Close()

	keys := &KeyPair{PK: new(groth16.ProvingKey), VK: new(groth16.VerifyingKey)}
	if _, err := keys.PK.ReadRawFrom(bufio.NewReaderSize(pkr, 1<<20)); err != nil {
		return nil, fmt.Errorf("engine: corrupt cached proving key %s: %w", digest, err)
	}
	if _, err := keys.VK.ReadFrom(bufio.NewReader(vkr)); err != nil {
		return nil, fmt.Errorf("engine: corrupt cached verifying key %s: %w", digest, err)
	}
	return keys, nil
}

// storeDisk writes both keys framed (size + checksum header) via
// temp-file rename, so a crash mid-write never publishes a partial key
// and a later corruption is caught at load time.
func (c *keyCache) storeDisk(digest string, keys *KeyPair) error {
	if err := writeFramedFile(c.pkPath(digest), func(w io.Writer) error {
		_, err := keys.PK.WriteRawTo(w)
		return err
	}); err != nil {
		return err
	}
	return writeFramedFile(c.vkPath(digest), func(w io.Writer) error {
		_, err := keys.VK.WriteTo(w)
		return err
	})
}

// AtomicWriteFile writes path via temp-file rename so a crash mid-write
// never leaves a truncated artifact that a later run would trust. Shared
// by the key cache and the proof service's model registry.
func AtomicWriteFile(path string, fn func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := fn(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
