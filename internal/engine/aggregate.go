package engine

import (
	"errors"
	"fmt"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/groth16"
	"zkrownn/internal/obs"
)

// Proof aggregation: the engine owns the inner-pairing-product SRS and
// folds many same-key proofs into one O(log N) artifact
// (groth16.AggregateProofs). The SRS is created lazily at the first
// aggregation and regenerated with fresh trapdoors whenever a request
// exceeds its capacity; responses carry the SRS verifier key alongside
// the artifact, so a regrown SRS never strands an issued aggregate —
// each artifact verifies against the key it shipped with.

// maxAggregateProofs bounds one aggregation request (and therefore the
// SRS tables the engine will materialize: ~4·2·maxN curve points).
const maxAggregateProofs = 1 << 12

// minAggregateSRS is the smallest SRS the engine bothers building, so a
// ramp of small windows doesn't regenerate per size.
const minAggregateSRS = 64

var (
	mAggregatesTotal = obs.Default().Counter("zkrownn_aggregates_total",
		"Aggregation artifacts produced.")
	mAggregatedProofsTotal = obs.Default().Counter("zkrownn_aggregated_proofs_total",
		"Proofs folded into aggregation artifacts (pre-padding counts).")
	mAggregateErrorsTotal = obs.Default().Counter("zkrownn_aggregate_errors_total",
		"Aggregation requests that failed (invalid member proofs or SRS errors).")
	mAggregateSeconds = obs.Default().Histogram("zkrownn_aggregate_seconds",
		"Proof aggregation wall-clock time per artifact (prove + self-check).", obs.TimeBuckets())
	mAggregateSRSBuilds = obs.Default().Counter("zkrownn_aggregate_srs_builds_total",
		"Aggregation SRS generations (first use and capacity regrowths).")
)

// aggregationSRS returns an SRS with capacity ≥ n, building or
// regrowing it under the engine's SRS lock.
func (e *Engine) aggregationSRS(n int) (*ipp.SRS, error) {
	e.srsMu.Lock()
	defer e.srsMu.Unlock()
	if e.srs != nil && e.srs.MaxN >= n {
		return e.srs, nil
	}
	want := ipp.NextPow2(n)
	if want < minAggregateSRS {
		want = minAggregateSRS
	}
	srs, err := ipp.NewSRS(want, e.opts.Rand)
	if err != nil {
		return nil, fmt.Errorf("engine: aggregation SRS: %w", err)
	}
	mAggregateSRSBuilds.Inc()
	e.srs = srs
	return srs, nil
}

// AggregateSRSKey exposes the current SRS verifier key (building the
// SRS at minimum capacity if none exists yet) so front-ends can publish
// it ahead of the first aggregation.
func (e *Engine) AggregateSRSKey() (*ipp.VerifierKey, error) {
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	srs, err := e.aggregationSRS(1)
	if err != nil {
		return nil, err
	}
	vk := srs.VK
	return &vk, nil
}

// AggregateMany folds the proofs into one aggregation artifact and
// self-checks it before returning, so a non-nil artifact is always a
// verifying one: an invalid member proof surfaces here as an error, the
// same contract as VerifyMany. The returned verifier key is the SRS
// share the artifact must be checked against downstream.
func (e *Engine) AggregateMany(vk *groth16.VerifyingKey, proofs []*groth16.Proof, publicInputs [][]fr.Element) (*groth16.AggregateProof, *ipp.VerifierKey, error) {
	if err := e.acquire(); err != nil {
		return nil, nil, err
	}
	defer e.release()
	if len(proofs) == 0 {
		return nil, nil, errors.New("engine: empty aggregation set")
	}
	if len(proofs) > maxAggregateProofs {
		return nil, nil, fmt.Errorf("%w: %d proofs > %d", groth16.ErrAggregateSize, len(proofs), maxAggregateProofs)
	}
	srs, err := e.aggregationSRS(ipp.NextPow2(len(proofs)))
	if err != nil {
		mAggregateErrorsTotal.Inc()
		return nil, nil, err
	}
	start := time.Now()
	agg, err := groth16.AggregateProofs(srs, vk, proofs, publicInputs)
	if err == nil {
		// The aggregator folds whatever it is handed; the self-check is
		// what rejects sets containing invalid proofs.
		err = groth16.VerifyAggregate(&srs.VK, vk, agg, publicInputs)
	}
	elapsed := time.Since(start)
	e.aggregateNs.Add(int64(elapsed))
	observeSeconds(mAggregateSeconds, elapsed)
	if err != nil {
		mAggregateErrorsTotal.Inc()
		return nil, nil, err
	}
	e.aggregates.Add(1)
	mAggregatesTotal.Inc()
	mAggregatedProofsTotal.Add(uint64(len(proofs)))
	e.verifies.Add(uint64(len(proofs)))
	mVerifiesTotal.Add(uint64(len(proofs)))
	svk := srs.VK
	return agg, &svk, nil
}
