package engine

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// cachedPKPath returns the framed proving-key file the disk tier wrote
// for the given digest.
func cachedPKPath(t *testing.T, dir, digest string) string {
	t.Helper()
	p := filepath.Join(dir, digest+".pk")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("expected cached proving key at %s: %v", p, err)
	}
	return p
}

// TestDiskCacheRejectsTruncatedKey corrupts the cached proving key by
// cutting it short; a fresh engine must treat that as a cache miss and
// re-run setup rather than proving with a mangled key or hard-failing.
func TestDiskCacheRejectsTruncatedKey(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(31))

	e1 := New(Options{CacheDir: dir, Rand: rng})
	r1, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	pkPath := cachedPKPath(t, dir, r1.Digest)
	info, err := os.Stat(pkPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(pkPath, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	e2 := New(Options{CacheDir: dir, Rand: rng})
	r2, err := e2.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 4)})
	if err != nil {
		t.Fatalf("prove over truncated cache file: %v", err)
	}
	if r2.CacheHit {
		t.Fatal("truncated key file must not count as a cache hit")
	}
	st := e2.Stats()
	if st.Setups != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want 1 setup and 0 disk hits after truncation", st)
	}
	if err := e2.Verify(r2.Keys.VK, r2.Proof, publicOf(cubicWitness(5, 4))); err != nil {
		t.Fatalf("re-setup proof rejected: %v", err)
	}
	// The repaired entry must have been rewritten: a third engine now
	// hits disk again.
	e3 := New(Options{CacheDir: dir, Rand: rng})
	r3, err := e3.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit || e3.Stats().DiskHits != 1 {
		t.Fatalf("rewritten cache entry not served from disk (hit=%v, stats=%+v)", r3.CacheHit, e3.Stats())
	}
}

// TestDiskCacheRejectsBitFlip flips one payload byte inside the frame;
// the CRC must catch it at open time and force a re-setup.
func TestDiskCacheRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(32))

	e1 := New(Options{CacheDir: dir, Rand: rng})
	r1, err := e1.Prove(Request{System: cubicSystem(7), Witness: cubicWitness(7, 3)})
	if err != nil {
		t.Fatal(err)
	}
	pkPath := cachedPKPath(t, dir, r1.Digest)
	raw, err := os.ReadFile(pkPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(pkPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New(Options{CacheDir: dir, Rand: rng})
	r2, err := e2.Prove(Request{System: cubicSystem(7), Witness: cubicWitness(7, 4)})
	if err != nil {
		t.Fatalf("prove over corrupted cache file: %v", err)
	}
	if r2.CacheHit || e2.Stats().Setups != 1 {
		t.Fatalf("bit-flipped key served from cache (hit=%v, stats=%+v)", r2.CacheHit, e2.Stats())
	}
	if err := e2.Verify(r2.Keys.VK, r2.Proof, publicOf(cubicWitness(7, 4))); err != nil {
		t.Fatalf("re-setup proof rejected: %v", err)
	}
}

// TestStreamedEngineRoundTrip forces out-of-core mode with a 1-byte
// memory budget and checks the whole lifecycle: spilled setup, streamed
// prove, in-memory reuse, and a disk hit after restart.
func TestStreamedEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(33))

	e1 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e1.Close()
	r1, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Keys.Stream == nil || !r1.Keys.Streamed() {
		t.Fatal("1-byte budget must force a streamed proving key")
	}
	if r1.Keys.PK != nil {
		t.Fatal("streamed key pair must not hold the in-memory proving key")
	}
	if r1.Keys.PKSizeBytes() <= 0 {
		t.Fatal("streamed key pair must report its raw on-disk size")
	}
	if err := e1.Verify(r1.Keys.VK, r1.Proof, publicOf(cubicWitness(5, 3))); err != nil {
		t.Fatalf("streamed proof rejected: %v", err)
	}

	// Same digest again: the open streamed key is reused from memory.
	r2, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second streamed prove must hit the in-memory key cache")
	}
	st := e1.Stats()
	if st.Setups != 1 || st.StreamProves != 2 {
		t.Fatalf("stats = %+v, want 1 setup and 2 streamed proves", st)
	}

	// Restart: the spilled raw key in CacheDir serves a cold engine.
	e2 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e2.Close()
	r3, err := e2.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit || r3.Keys.Stream == nil {
		t.Fatalf("restarted streamed engine must stream from the disk cache (hit=%v)", r3.CacheHit)
	}
	st2 := e2.Stats()
	if st2.Setups != 0 || st2.DiskHits != 1 {
		t.Fatalf("restart stats = %+v, want 0 setups and 1 disk hit", st2)
	}
	// Cross-check against the original engine's VK.
	if err := e2.Verify(r1.Keys.VK, r3.Proof, publicOf(cubicWitness(5, 4))); err != nil {
		t.Fatalf("streamed proof from restart rejected by original VK: %v", err)
	}
}

// TestStreamedProofMatchesInMemoryEngine proves the same circuit with
// the same engine randomness in both modes and requires identical proof
// bytes — the engine-level replica of the groth16 oracle.
func TestStreamedProofMatchesInMemoryEngine(t *testing.T) {
	sys := cubicSystem(5)
	w := cubicWitness(5, 3)

	inMem := New(Options{Rand: rand.New(rand.NewSource(34))})
	rIn, err := inMem.Prove(Request{System: sys, Witness: w})
	if err != nil {
		t.Fatal(err)
	}

	streamed := New(Options{CacheDir: t.TempDir(), MemoryBudget: 1, Rand: rand.New(rand.NewSource(34))})
	defer streamed.Close()
	rSt, err := streamed.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !rSt.Keys.Streamed() {
		t.Fatal("expected streamed mode")
	}
	if !rIn.Proof.Ar.Equal(&rSt.Proof.Ar) || !rIn.Proof.Bs.Equal(&rSt.Proof.Bs) || !rIn.Proof.Krs.Equal(&rSt.Proof.Krs) {
		t.Fatal("streamed engine proof diverges from in-memory engine proof")
	}
}

// TestSpilledEngineRoundTrip forces full out-of-core mode (streamed
// key, CSR section file, disk-backed witness tape) and checks the whole
// lifecycle: spilled solve+prove with PublicInputs but no resident
// witness, a digest-only repeat against the stripped cached circuit, a
// restart served by the on-disk key and CSR files, and recovery from a
// corrupted CSR file.
func TestSpilledEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(36))
	sys := cubicSystem(5)
	asg := sys.WitnessAssignment(cubicWitness(5, 3))

	e1 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e1.Close()
	r1, err := e1.Prove(Request{System: sys, Public: asg.Public, Secret: asg.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Keys.Streamed() || !r1.Keys.Spilled() {
		t.Fatal("1-byte budget must force full out-of-core mode")
	}
	if r1.Witness != nil {
		t.Fatal("spilled prove must not return a resident witness")
	}
	want := publicOf(cubicWitness(5, 3))
	if len(r1.PublicInputs) != len(want) || !r1.PublicInputs[0].Equal(&want[0]) {
		t.Fatalf("PublicInputs = %v, want %v", r1.PublicInputs, want)
	}
	if err := e1.Verify(r1.Keys.VK, r1.Proof, r1.PublicInputs); err != nil {
		t.Fatalf("spilled proof rejected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, r1.Digest+".csr")); err != nil {
		t.Fatalf("expected CSR spill file beside the key: %v", err)
	}
	if st := e1.Stats(); st.SpillProves != 1 || st.StreamProves != 1 || st.Solves != 1 {
		t.Fatalf("stats = %+v, want 1 spilled prove and 1 solve", st)
	}

	// The cache must hold a solver-only circuit copy, and a digest-only
	// request must still solve and prove through the spill files.
	if cs, ok := e1.Circuit(r1.Digest); !ok || !cs.Stripped() {
		t.Fatalf("cached circuit not stripped (ok=%v)", ok)
	}
	asg7 := sys.WitnessAssignment(cubicWitness(5, 7))
	r2, err := e1.Prove(Request{Digest: r1.Digest, Public: asg7.Public, Secret: asg7.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("digest-only spilled prove must hit the key cache")
	}
	if err := e1.Verify(r1.Keys.VK, r2.Proof, r2.PublicInputs); err != nil {
		t.Fatalf("digest-only spilled proof rejected: %v", err)
	}

	// Restart: spilled key and CSR file both reopen from CacheDir.
	e2 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e2.Close()
	r3, err := e2.Prove(Request{System: cubicSystem(5), Public: asg.Public, Secret: asg.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit || !r3.Keys.Spilled() {
		t.Fatalf("restart must stream keys and CSR from disk (hit=%v, spilled=%v)", r3.CacheHit, r3.Keys.Spilled())
	}
	if err := e2.Verify(r1.Keys.VK, r3.Proof, r3.PublicInputs); err != nil {
		t.Fatalf("restarted spilled proof rejected by original VK: %v", err)
	}

	// A corrupted CSR file is rewritten from the resent system.
	csrFile := filepath.Join(dir, r1.Digest+".csr")
	raw, err := os.ReadFile(csrFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(csrFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e3.Close()
	r4, err := e3.Prove(Request{System: cubicSystem(5), Public: asg.Public, Secret: asg.Secret})
	if err != nil {
		t.Fatalf("prove over corrupted CSR file: %v", err)
	}
	if err := e3.Verify(r1.Keys.VK, r4.Proof, r4.PublicInputs); err != nil {
		t.Fatalf("proof after CSR rewrite rejected: %v", err)
	}
}

// TestSpilledProofMatchesInMemoryEngine is the engine-level oracle for
// full out-of-core mode: same circuit, same randomness, identical proof
// points whether everything is resident or nothing is.
func TestSpilledProofMatchesInMemoryEngine(t *testing.T) {
	sys := cubicSystem(5)
	asg := sys.WitnessAssignment(cubicWitness(5, 3))

	inMem := New(Options{Rand: rand.New(rand.NewSource(37))})
	rIn, err := inMem.Prove(Request{System: sys, Public: asg.Public, Secret: asg.Secret})
	if err != nil {
		t.Fatal(err)
	}

	spilled := New(Options{CacheDir: t.TempDir(), MemoryBudget: 1, Rand: rand.New(rand.NewSource(37))})
	defer spilled.Close()
	rSp, err := spilled.Prove(Request{System: cubicSystem(5), Public: asg.Public, Secret: asg.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if !rSp.Keys.Spilled() {
		t.Fatal("expected full out-of-core mode")
	}
	if !rIn.Proof.Ar.Equal(&rSp.Proof.Ar) || !rIn.Proof.Bs.Equal(&rSp.Proof.Bs) || !rIn.Proof.Krs.Equal(&rSp.Proof.Krs) {
		t.Fatal("spilled engine proof diverges from in-memory engine proof")
	}
	if len(rIn.PublicInputs) != len(rSp.PublicInputs) || !rIn.PublicInputs[0].Equal(&rSp.PublicInputs[0]) {
		t.Fatal("spilled engine instance diverges from in-memory engine instance")
	}
}

// TestStreamedEngineTempSpill exercises streaming without a CacheDir:
// the raw key spills to a temp directory that Close removes.
func TestStreamedEngineTempSpill(t *testing.T) {
	e := New(Options{MemoryBudget: 1, Rand: rand.New(rand.NewSource(35))})
	r1, err := e.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Keys.Streamed() {
		t.Fatal("1-byte budget must stream even without a cache dir")
	}
	if err := e.Verify(r1.Keys.VK, r1.Proof, publicOf(cubicWitness(5, 3))); err != nil {
		t.Fatalf("streamed proof rejected: %v", err)
	}
	e.streamMu.Lock()
	spill := e.streamDir
	e.streamMu.Unlock()
	if spill == "" {
		t.Fatal("expected a temp spill directory")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatalf("Close must remove the temp spill dir %s (stat err: %v)", spill, err)
	}
}
