package engine

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// cachedPKPath returns the framed proving-key file the disk tier wrote
// for the given digest.
func cachedPKPath(t *testing.T, dir, digest string) string {
	t.Helper()
	p := filepath.Join(dir, digest+".pk")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("expected cached proving key at %s: %v", p, err)
	}
	return p
}

// TestDiskCacheRejectsTruncatedKey corrupts the cached proving key by
// cutting it short; a fresh engine must treat that as a cache miss and
// re-run setup rather than proving with a mangled key or hard-failing.
func TestDiskCacheRejectsTruncatedKey(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(31))

	e1 := New(Options{CacheDir: dir, Rand: rng})
	r1, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	pkPath := cachedPKPath(t, dir, r1.Digest)
	info, err := os.Stat(pkPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(pkPath, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	e2 := New(Options{CacheDir: dir, Rand: rng})
	r2, err := e2.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 4)})
	if err != nil {
		t.Fatalf("prove over truncated cache file: %v", err)
	}
	if r2.CacheHit {
		t.Fatal("truncated key file must not count as a cache hit")
	}
	st := e2.Stats()
	if st.Setups != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want 1 setup and 0 disk hits after truncation", st)
	}
	if err := e2.Verify(r2.Keys.VK, r2.Proof, publicOf(cubicWitness(5, 4))); err != nil {
		t.Fatalf("re-setup proof rejected: %v", err)
	}
	// The repaired entry must have been rewritten: a third engine now
	// hits disk again.
	e3 := New(Options{CacheDir: dir, Rand: rng})
	r3, err := e3.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit || e3.Stats().DiskHits != 1 {
		t.Fatalf("rewritten cache entry not served from disk (hit=%v, stats=%+v)", r3.CacheHit, e3.Stats())
	}
}

// TestDiskCacheRejectsBitFlip flips one payload byte inside the frame;
// the CRC must catch it at open time and force a re-setup.
func TestDiskCacheRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(32))

	e1 := New(Options{CacheDir: dir, Rand: rng})
	r1, err := e1.Prove(Request{System: cubicSystem(7), Witness: cubicWitness(7, 3)})
	if err != nil {
		t.Fatal(err)
	}
	pkPath := cachedPKPath(t, dir, r1.Digest)
	raw, err := os.ReadFile(pkPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(pkPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New(Options{CacheDir: dir, Rand: rng})
	r2, err := e2.Prove(Request{System: cubicSystem(7), Witness: cubicWitness(7, 4)})
	if err != nil {
		t.Fatalf("prove over corrupted cache file: %v", err)
	}
	if r2.CacheHit || e2.Stats().Setups != 1 {
		t.Fatalf("bit-flipped key served from cache (hit=%v, stats=%+v)", r2.CacheHit, e2.Stats())
	}
	if err := e2.Verify(r2.Keys.VK, r2.Proof, publicOf(cubicWitness(7, 4))); err != nil {
		t.Fatalf("re-setup proof rejected: %v", err)
	}
}

// TestStreamedEngineRoundTrip forces out-of-core mode with a 1-byte
// memory budget and checks the whole lifecycle: spilled setup, streamed
// prove, in-memory reuse, and a disk hit after restart.
func TestStreamedEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(33))

	e1 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e1.Close()
	r1, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Keys.Stream == nil || !r1.Keys.Streamed() {
		t.Fatal("1-byte budget must force a streamed proving key")
	}
	if r1.Keys.PK != nil {
		t.Fatal("streamed key pair must not hold the in-memory proving key")
	}
	if r1.Keys.PKSizeBytes() <= 0 {
		t.Fatal("streamed key pair must report its raw on-disk size")
	}
	if err := e1.Verify(r1.Keys.VK, r1.Proof, publicOf(cubicWitness(5, 3))); err != nil {
		t.Fatalf("streamed proof rejected: %v", err)
	}

	// Same digest again: the open streamed key is reused from memory.
	r2, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second streamed prove must hit the in-memory key cache")
	}
	st := e1.Stats()
	if st.Setups != 1 || st.StreamProves != 2 {
		t.Fatalf("stats = %+v, want 1 setup and 2 streamed proves", st)
	}

	// Restart: the spilled raw key in CacheDir serves a cold engine.
	e2 := New(Options{CacheDir: dir, MemoryBudget: 1, Rand: rng})
	defer e2.Close()
	r3, err := e2.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit || r3.Keys.Stream == nil {
		t.Fatalf("restarted streamed engine must stream from the disk cache (hit=%v)", r3.CacheHit)
	}
	st2 := e2.Stats()
	if st2.Setups != 0 || st2.DiskHits != 1 {
		t.Fatalf("restart stats = %+v, want 0 setups and 1 disk hit", st2)
	}
	// Cross-check against the original engine's VK.
	if err := e2.Verify(r1.Keys.VK, r3.Proof, publicOf(cubicWitness(5, 4))); err != nil {
		t.Fatalf("streamed proof from restart rejected by original VK: %v", err)
	}
}

// TestStreamedProofMatchesInMemoryEngine proves the same circuit with
// the same engine randomness in both modes and requires identical proof
// bytes — the engine-level replica of the groth16 oracle.
func TestStreamedProofMatchesInMemoryEngine(t *testing.T) {
	sys := cubicSystem(5)
	w := cubicWitness(5, 3)

	inMem := New(Options{Rand: rand.New(rand.NewSource(34))})
	rIn, err := inMem.Prove(Request{System: sys, Witness: w})
	if err != nil {
		t.Fatal(err)
	}

	streamed := New(Options{CacheDir: t.TempDir(), MemoryBudget: 1, Rand: rand.New(rand.NewSource(34))})
	defer streamed.Close()
	rSt, err := streamed.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !rSt.Keys.Streamed() {
		t.Fatal("expected streamed mode")
	}
	if !rIn.Proof.Ar.Equal(&rSt.Proof.Ar) || !rIn.Proof.Bs.Equal(&rSt.Proof.Bs) || !rIn.Proof.Krs.Equal(&rSt.Proof.Krs) {
		t.Fatal("streamed engine proof diverges from in-memory engine proof")
	}
}

// TestStreamedEngineTempSpill exercises streaming without a CacheDir:
// the raw key spills to a temp directory that Close removes.
func TestStreamedEngineTempSpill(t *testing.T) {
	e := New(Options{MemoryBudget: 1, Rand: rand.New(rand.NewSource(35))})
	r1, err := e.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Keys.Streamed() {
		t.Fatal("1-byte budget must stream even without a cache dir")
	}
	if err := e.Verify(r1.Keys.VK, r1.Proof, publicOf(cubicWitness(5, 3))); err != nil {
		t.Fatalf("streamed proof rejected: %v", err)
	}
	e.streamMu.Lock()
	spill := e.streamDir
	e.streamMu.Unlock()
	if spill == "" {
		t.Fatal("expected a temp spill directory")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatalf("Close must remove the temp spill dir %s (stat err: %v)", spill, err)
	}
}
