package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
	"zkrownn/internal/obs"
	"zkrownn/internal/r1cs"
)

// cubicSystem builds x³ + x + k = out (out public) — the standard toy
// circuit, compiled through the FromSystem adapter. Different k values
// produce different constraint coefficients and therefore different
// circuit digests.
func cubicSystem(k uint64) *r1cs.CompiledSystem {
	cs, err := r1cs.FromSystem(cubicEager(k))
	if err != nil {
		panic(err)
	}
	return cs
}

func cubicEager(k uint64) *r1cs.System {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	kEl := func() fr.Element { var e fr.Element; e.SetUint64(k); return e }
	lc := func(terms ...r1cs.Term) r1cs.LinearCombination { return terms }

	sys := &r1cs.System{NbPublic: 2, NbWires: 5}
	sys.Constraints = append(sys.Constraints,
		r1cs.Constraint{ // x·x = x²
			A: lc(r1cs.Term{Wire: 2, Coeff: one()}),
			B: lc(r1cs.Term{Wire: 2, Coeff: one()}),
			C: lc(r1cs.Term{Wire: 3, Coeff: one()}),
		},
		r1cs.Constraint{ // x²·x = x³
			A: lc(r1cs.Term{Wire: 3, Coeff: one()}),
			B: lc(r1cs.Term{Wire: 2, Coeff: one()}),
			C: lc(r1cs.Term{Wire: 4, Coeff: one()}),
		},
		r1cs.Constraint{ // (x³ + x + k)·1 = out
			A: lc(
				r1cs.Term{Wire: 4, Coeff: one()},
				r1cs.Term{Wire: 2, Coeff: one()},
				r1cs.Term{Wire: 0, Coeff: kEl()},
			),
			B: lc(r1cs.Term{Wire: 0, Coeff: one()}),
			C: lc(r1cs.Term{Wire: 1, Coeff: one()}),
		})
	return sys
}

func cubicWitness(k, x uint64) []fr.Element {
	w := make([]fr.Element, 5)
	w[0].SetOne()
	w[2].SetUint64(x)
	w[3].Mul(&w[2], &w[2])
	w[4].Mul(&w[3], &w[2])
	var kEl fr.Element
	kEl.SetUint64(k)
	w[1].Add(&w[4], &w[2])
	w[1].Add(&w[1], &kEl)
	return w
}

func publicOf(w []fr.Element) []fr.Element { return w[1:2] }

func TestProveCacheHitSkipsSetup(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(1))})
	sys := cubicSystem(5)

	r1, err := e.Prove(Request{Name: "first", System: sys, Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first prove must run setup")
	}
	if err := e.Verify(r1.Keys.VK, r1.Proof, publicOf(cubicWitness(5, 3))); err != nil {
		t.Fatalf("first proof rejected: %v", err)
	}

	// Same digest, different witness: the repeat-dispute shape.
	r2, err := e.Prove(Request{Name: "second", System: cubicSystem(5), Witness: cubicWitness(5, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second prove for the same circuit digest must hit the key cache")
	}
	if r2.SetupTime >= r1.SetupTime {
		t.Fatalf("cache-hit SetupTime %v not cheaper than real setup %v", r2.SetupTime, r1.SetupTime)
	}
	if err := e.Verify(r2.Keys.VK, r2.Proof, publicOf(cubicWitness(5, 7))); err != nil {
		t.Fatalf("cached-key proof rejected: %v", err)
	}

	st := e.Stats()
	if st.Setups != 1 || st.MemHits != 1 || st.Proves != 2 {
		t.Fatalf("stats = %+v, want 1 setup, 1 mem hit, 2 proves", st)
	}
}

func TestDistinctDigestsDistinctKeys(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(2))})
	ra, err := e.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Prove(Request{System: cubicSystem(9), Witness: cubicWitness(9, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Digest == rb.Digest {
		t.Fatal("different constraint coefficients must give different digests")
	}
	if rb.CacheHit {
		t.Fatal("different digest must not hit the cache")
	}
	if e.Stats().Setups != 2 {
		t.Fatalf("want 2 setups, got %d", e.Stats().Setups)
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))

	e1 := New(Options{CacheDir: dir, Rand: rng})
	r1, err := e1.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh engine (cold memory) over the same directory: disk hit.
	e2 := New(Options{CacheDir: dir, Rand: rng})
	r2, err := e2.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("restarted engine must load keys from disk")
	}
	st := e2.Stats()
	if st.Setups != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 0 setups and 1 disk hit", st)
	}
	// Keys deserialized from disk must interoperate with the original VK.
	if err := e2.Verify(r1.Keys.VK, r2.Proof, publicOf(cubicWitness(5, 4))); err != nil {
		t.Fatalf("proof from disk-cached keys rejected by original VK: %v", err)
	}
}

func TestConcurrentSetupDeduplicated(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(4)), Workers: 8})
	const jobs = 8
	reqs := make([]Request, jobs)
	for i := range reqs {
		reqs[i] = Request{System: cubicSystem(5), Witness: cubicWitness(5, uint64(i+2))}
	}
	results := e.ProveMany(reqs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if got := e.Stats().Setups; got != 1 {
		t.Fatalf("concurrent same-digest requests ran %d setups, want 1", got)
	}
}

func TestVerifyMany(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(5)), Workers: 4})
	const jobs = 3
	reqs := make([]Request, jobs)
	publics := make([][]fr.Element, jobs)
	for i := range reqs {
		w := cubicWitness(5, uint64(i+2))
		reqs[i] = Request{System: cubicSystem(5), Witness: w}
		publics[i] = publicOf(w)
	}
	results := e.ProveMany(reqs)
	vk := results[0].Keys.VK
	proofs := make([]*groth16.Proof, jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		proofs[i] = r.Proof
	}
	if err := e.VerifyMany(vk, proofs, publics); err != nil {
		t.Fatalf("batch verification failed: %v", err)
	}
	// Tampered public input must fail the batch.
	publics[1][0].SetUint64(12345)
	if err := e.VerifyMany(vk, proofs, publics); err == nil {
		t.Fatal("tampered batch accepted")
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(Options{CacheEntries: 2, Rand: rand.New(rand.NewSource(6))})
	for _, k := range []uint64{5, 6, 7} {
		if _, err := e.Prove(Request{System: cubicSystem(k), Witness: cubicWitness(k, 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.CachedKeys(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	// k=5 was evicted; proving it again runs setup.
	before := e.Stats().Setups
	r, err := e.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit || e.Stats().Setups != before+1 {
		t.Fatal("evicted digest must re-run setup")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(7)), Workers: 4})

	// In-flight work started before Close must complete; Close blocks
	// until it has drained.
	const jobs = 4
	reqs := make([]Request, jobs)
	for i := range reqs {
		reqs[i] = Request{System: cubicSystem(5), Witness: cubicWitness(5, uint64(i+2))}
	}
	var results []*Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		results = e.ProveMany(reqs)
	}()
	<-done // simplest deterministic ordering: drain, then close
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("pre-close request %d failed: %v", i, r.Err)
		}
	}

	// Every entry point must reject with the sentinel after Close.
	if _, err := e.Prove(Request{System: cubicSystem(5), Witness: cubicWitness(5, 3)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Prove after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := e.Keys(cubicSystem(5), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Keys after Close: err = %v, want ErrClosed", err)
	}
	vk := results[0].Keys.VK
	if err := e.Verify(vk, results[0].Proof, publicOf(cubicWitness(5, 2))); !errors.Is(err, ErrClosed) {
		t.Fatalf("Verify after Close: err = %v, want ErrClosed", err)
	}
	post := e.ProveMany(reqs[:1])
	if !errors.Is(post[0].Err, ErrClosed) {
		t.Fatalf("ProveMany after Close: err = %v, want ErrClosed", post[0].Err)
	}
	// Idempotent.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The caches survive Close (Close is a request barrier, not a purge).
	if e.CachedKeys() == 0 {
		t.Fatal("Close must not drop cached keys")
	}
}

// TestStatsRaceUnderLoad hammers Stats/CachedKeys from many readers
// while proves and verifies run — the access pattern a service /stats
// endpoint produces. Run under -race (CI does) to audit counter
// atomicity; all Stats counters must be atomics.
func TestStatsRaceUnderLoad(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(8)), Workers: 4})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = e.Stats()
					_ = e.CachedKeys()
				}
			}
		}()
	}

	const jobs = 6
	reqs := make([]Request, jobs)
	publics := make([][]fr.Element, jobs)
	for i := range reqs {
		w := cubicWitness(5, uint64(i+2))
		reqs[i] = Request{System: cubicSystem(5), Witness: w}
		publics[i] = publicOf(w)
	}
	results := e.ProveMany(reqs)
	proofs := make([]*groth16.Proof, jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		proofs[i] = r.Proof
	}
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := e.Verify(results[0].Keys.VK, proofs[i], publics[i]); err != nil {
				t.Errorf("verify %d: %v", i, err)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.VerifyMany(results[0].Keys.VK, proofs, publics); err != nil {
			t.Errorf("batch verify: %v", err)
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	st := e.Stats()
	if st.Proves != jobs || st.Setups != 1 {
		t.Fatalf("stats = %+v, want %d proves and 1 setup", st, jobs)
	}
	if st.Verifies != jobs*2 {
		t.Fatalf("verifies = %d, want %d", st.Verifies, jobs*2)
	}
}

// TestSolveManyRequests drives the compile-once / solve-many request
// shape: one system, many input assignments, witnesses generated by the
// engine; later requests address the circuit by digest alone.
func TestSolveManyRequests(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(9))})
	sys := cubicSystem(5)

	// First request carries the system and an assignment (no witness).
	w1 := cubicWitness(5, 3)
	asg1 := sys.WitnessAssignment(w1)
	r1, err := e.Prove(Request{Name: "solve-1", System: sys, Public: asg1.Public, Secret: asg1.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Witness == nil {
		t.Fatal("result carries no witness")
	}
	for i := range w1 {
		if !r1.Witness[i].Equal(&w1[i]) {
			t.Fatalf("solved wire %d mismatch", i)
		}
	}
	if err := e.Verify(r1.Keys.VK, r1.Proof, publicOf(w1)); err != nil {
		t.Fatalf("solved proof rejected: %v", err)
	}

	// The circuit is cached beside the keys: digest-only request.
	if _, ok := e.Circuit(r1.Digest); !ok {
		t.Fatal("compiled system not cached beside the keys")
	}
	w2 := cubicWitness(5, 8)
	asg2 := sys.WitnessAssignment(w2)
	r2, err := e.Prove(Request{Name: "solve-2", Digest: r1.Digest, Public: asg2.Public, Secret: asg2.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("digest-only request missed the key cache")
	}
	if err := e.Verify(r2.Keys.VK, r2.Proof, publicOf(w2)); err != nil {
		t.Fatalf("digest-only proof rejected: %v", err)
	}

	st := e.Stats()
	if st.Solves != 2 {
		t.Fatalf("want 2 solves, got %d", st.Solves)
	}

	// Unknown digest fails fast.
	if _, err := e.Prove(Request{Digest: "feedface"}); err == nil {
		t.Fatal("unknown digest accepted")
	}
}

// TestTracedProveManyRace hammers the span recorder from the worker
// pool: every job in a ProveMany batch records into the SAME trace
// (engine workers and the MSM lane pool write events concurrently)
// while readers snapshot Events/Totals mid-flight. Run under -race
// this is the telemetry concurrency guard.
func TestTracedProveManyRace(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(17)), Workers: 4})
	tr := obs.NewTrace()
	ctx := obs.ContextWithTrace(context.Background(), tr)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = tr.Events()
					_ = tr.Totals()
				}
			}
		}()
	}

	const jobs = 8
	reqs := make([]Request, jobs)
	for i := range reqs {
		reqs[i] = Request{System: cubicSystem(7), Witness: cubicWitness(7, uint64(i+2)), Ctx: ctx}
	}
	results := e.ProveMany(reqs)
	close(stop)
	readers.Wait()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if err := e.VerifyCtx(ctx, results[0].Keys.VK, r.Proof, publicOf(reqs[i].Witness)); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}

	totals := tr.Totals()
	if totals["engine/prove"] == 0 {
		t.Fatalf("shared trace recorded no engine/prove time (%d names)", len(totals))
	}
	if totals["verify/pairing"] == 0 {
		t.Fatal("shared trace recorded no verify/pairing time")
	}
}
