package engine

import (
	"errors"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
)

func TestAggregateMany(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(21))})
	sys := cubicSystem(5)
	var proofs []*groth16.Proof
	var publics [][]fr.Element
	var vk *groth16.VerifyingKey
	for _, x := range []uint64{2, 3, 5, 7, 9} {
		res, err := e.Prove(Request{System: sys, Witness: cubicWitness(5, x)})
		if err != nil {
			t.Fatal(err)
		}
		vk = res.Keys.VK
		proofs = append(proofs, res.Proof)
		publics = append(publics, res.PublicInputs)
	}

	agg, svk, err := e.AggregateMany(vk, proofs, publics)
	if err != nil {
		t.Fatalf("aggregation failed: %v", err)
	}
	if agg == nil || svk == nil {
		t.Fatal("nil artifact or SRS key")
	}
	if err := groth16.VerifyAggregate(svk, vk, agg, publics); err != nil {
		t.Fatalf("engine artifact does not verify: %v", err)
	}
	if st := e.Stats(); st.Aggregates != 1 || st.AggregateTime <= 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}

	// An invalid member must fail the whole aggregation (the engine
	// self-checks the artifact before returning it).
	bad := make([][]fr.Element, len(publics))
	copy(bad, publics)
	bad[3] = []fr.Element{{}}
	bad[3][0].SetUint64(12345)
	if _, _, err := e.AggregateMany(vk, proofs, bad); err == nil {
		t.Fatal("aggregation of invalid set succeeded")
	}

	// SRS reuse: a second aggregation must not rebuild (same capacity).
	agg2, svk2, err := e.AggregateMany(vk, proofs[:2], publics[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !svk2.GA.Equal(&svk.GA) {
		t.Fatal("SRS was rebuilt for an in-capacity aggregation")
	}
	if err := groth16.VerifyAggregate(svk2, vk, agg2, publics[:2]); err != nil {
		t.Fatal(err)
	}

	// Empty and oversized sets are rejected up front.
	if _, _, err := e.AggregateMany(vk, nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	big := make([]*groth16.Proof, maxAggregateProofs+1)
	bigPub := make([][]fr.Element, maxAggregateProofs+1)
	if _, _, err := e.AggregateMany(vk, big, bigPub); !errors.Is(err, groth16.ErrAggregateSize) {
		t.Fatalf("oversized set error = %v, want ErrAggregateSize", err)
	}

	// Closed engine returns ErrClosed.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.AggregateMany(vk, proofs, publics); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine error = %v, want ErrClosed", err)
	}
}

func TestAggregateSRSKey(t *testing.T) {
	e := New(Options{Rand: rand.New(rand.NewSource(22))})
	svk, err := e.AggregateSRSKey()
	if err != nil {
		t.Fatal(err)
	}
	if svk.GA.IsInfinity() {
		t.Fatal("degenerate SRS key")
	}
}
