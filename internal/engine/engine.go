// Package engine is ZKROWNN's prover engine: a concurrent, cache-aware
// subsystem that owns the Groth16 setup → prove → verify lifecycle for
// many requests.
//
// The engine keys trusted setup on the circuit digest
// (r1cs.CompiledSystem.Digest): two requests for the same circuit
// *architecture* — the common shape of ownership disputes, where one
// model family is proved over and over against different suspect
// weights — share one setup. Keys live in a bounded in-memory LRU with
// an optional on-disk tier (the groth16 WriteTo/ReadFrom encoding), so
// a restarted service skips every setup it has ever run; the compiled
// system itself is cached beside the keys, so solve-many requests may
// name the circuit by digest instead of re-sending it. Concurrent
// requests for the same digest are deduplicated: one goroutine runs
// setup, the rest wait for it.
//
// Requests carry input assignments rather than full witnesses by
// default: the engine replays the circuit's recorded solver program
// (CompiledSystem.Solve) per job — the compile-once / solve-many split
// that keeps multi-million-constraint circuits from being rebuilt on
// every proof.
//
// ProveMany fans requests across a worker pool; VerifyMany folds many
// proofs under one verifying key into a single batched pairing product.
// Every stage is metered (Stats) so operators can see cache hit rates
// and where wall-clock time goes.
package engine

import (
	"bufio"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/groth16"
	"zkrownn/internal/obs"
	"zkrownn/internal/r1cs"
)

// Options configures an Engine. The zero value is usable: a small
// memory-only cache and one prover worker per core.
type Options struct {
	// CacheEntries bounds the in-memory key cache (default 16; a
	// negative value means unbounded).
	CacheEntries int
	// CacheDir, when non-empty, enables on-disk key persistence keyed by
	// circuit digest. The directory is created on first write.
	CacheDir string
	// Workers sizes the ProveMany pool (default GOMAXPROCS).
	Workers int
	// Rand supplies setup and prover randomness (default crypto/rand).
	// It must be safe for concurrent use; the engine serializes setup
	// internally but proves concurrently.
	Rand io.Reader
	// MemoryBudget, when > 0, is a per-circuit ceiling in bytes on key
	// material held in RAM: circuits whose raw proving-key encoding
	// (groth16.RawPKSizeBytes) exceeds it are set up and proved
	// out-of-core — setup spills the key straight to disk and every
	// prove streams it back in bounded windows, so peak prover memory
	// stays independent of key size. Keys under the budget use the
	// ordinary in-memory path. Set it to 1 to force streaming for every
	// circuit. Streamed keys spill into CacheDir when configured (the
	// spill file doubles as the cache entry), otherwise into a
	// temporary directory removed on Close.
	//
	// The budget also governs the other two per-circuit residents: when
	// a streamed circuit's CSR encoding (r1cs.CSRRawSizeBytes) plus its
	// solved witness would themselves exceed the budget, the engine goes
	// fully out-of-core — the constraint system is written once to a
	// digest-keyed section file beside the spilled key, setup and every
	// prove stream constraint rows from it in bounded windows, and the
	// solver writes the witness tape to a disk-backed page cache instead
	// of RAM. The cache then retains only a solver-program copy of the
	// circuit (r1cs.CompiledSystem.StripForSolve), so no component of
	// the pipeline scales resident memory with circuit size.
	MemoryBudget int64
	// StreamChunk overrides the number of points per streamed-MSM
	// window (default curve.DefaultStreamChunk). Peak per-MSM point
	// memory in streamed mode is roughly three chunks of decoded
	// affine points (double buffering plus the active Pippenger pass).
	StreamChunk int
}

// Request is one proving job. The compile-once / solve-many shape is
// the default: carry the compiled system (or the digest of one the
// engine has already seen) plus the per-proof input assignment, and the
// engine replays the circuit's solver program to rebuild the witness.
// Callers that already hold a full witness may pass it instead.
type Request struct {
	Name string
	// Ctx, when non-nil, carries request-scoped telemetry: a trace
	// attached with obs.ContextWithTrace receives per-phase spans for the
	// whole setup → solve → prove pipeline. The engine does not honor
	// cancellation — proofs run to completion once started.
	Ctx context.Context
	// System is the compiled circuit. It may be nil when Digest names a
	// circuit the engine has cached from an earlier request.
	System *r1cs.CompiledSystem
	// Digest optionally identifies a cached circuit (hex, as returned in
	// Result.Digest) so solve-many callers don't re-send the system.
	// Ignored when System is set.
	Digest string
	// Witness, when non-nil, is used as the full wire assignment and
	// Public/Secret are ignored. Otherwise the engine solves the witness
	// from the input assignment (Result.SolveTime reports the cost).
	Witness []fr.Element
	// Public and Secret bind the circuit's declared inputs, in
	// declaration order (r1cs.Assignment halves).
	Public []fr.Element
	Secret []fr.Element
	// Rand overrides the engine's randomness source for this request
	// (useful for deterministic tests). The engine serializes reads from
	// a per-request source, so a plain math/rand Reader is safe.
	Rand io.Reader
}

// Result reports one proving job's artifacts and per-stage timings.
type Result struct {
	Name   string
	Digest string
	Keys   *KeyPair
	Proof  *groth16.Proof
	// Witness is the full wire assignment the proof was produced from —
	// the solved witness when the request carried an input assignment,
	// or the request's own witness. It is nil when the memory budget
	// sent the witness to the disk-backed spill store (the whole point
	// of that mode is never materializing it); use PublicInputs, which
	// is populated in every mode.
	Witness []fr.Element
	// PublicInputs is the proof's instance — the public wires in the
	// order Verify expects (CompiledSystem.PublicValues). Always
	// populated, whichever residency the witness had.
	PublicInputs []fr.Element
	// SetupTime is the wall-clock cost of obtaining keys. On a cache hit
	// it is the lookup cost — effectively zero next to a real setup.
	SetupTime time.Duration
	// SolveTime is the witness-generation cost (zero when the request
	// supplied a witness).
	SolveTime time.Duration
	ProveTime time.Duration
	// CacheHit is true when setup was skipped (memory or disk tier).
	CacheHit bool
	// PersistErr reports a failed write to the disk cache tier. The keys
	// are still cached in memory and fully usable; it is surfaced so
	// callers don't promise on-disk keys that don't exist.
	PersistErr error
	// Err is set instead of returned so ProveMany can report per-request
	// failures without abandoning the rest of the batch.
	Err error
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Setups       uint64 // trusted setups actually executed
	MemHits      uint64 // key lookups served from the in-memory LRU
	DiskHits     uint64 // key lookups served from the disk tier
	Solves       uint64 // witnesses generated by solver-program replay
	Proves       uint64
	StreamProves uint64 // subset of Proves served by the out-of-core backend
	SpillProves  uint64 // subset of StreamProves that also streamed the CSR and spilled the witness
	Verifies     uint64 // individual + batched verification calls
	Aggregates   uint64 // aggregation artifacts produced
	SetupTime    time.Duration
	SolveTime    time.Duration
	ProveTime    time.Duration
	VerifyTime   time.Duration
	// AggregateTime is aggregation wall-clock (prove + self-check).
	AggregateTime time.Duration
}

// ErrClosed is returned by every Engine entry point after Close: the
// sentinel a service front-end turns into a "shutting down" response.
var ErrClosed = errors.New("engine: engine is closed")

// Engine is safe for concurrent use by multiple goroutines.
//
// All Stats counters are atomics and may be read (via Stats) at any
// time, including while proves and verifies are running on other
// goroutines; the snapshot is per-counter atomic, not a globally
// consistent cut, which is fine for monitoring.
type Engine struct {
	opts  Options
	cache *keyCache

	// lifecycle serializes Close against in-flight work: every public
	// entry point holds a read lock for its whole duration, so Close
	// (the sole writer) blocks until in-flight proves and their disk
	// cache writes have drained, and every later acquisition fails with
	// ErrClosed.
	lifecycle sync.RWMutex
	closed    bool

	// inflight deduplicates concurrent setups per digest.
	inflightMu sync.Mutex
	inflight   map[string]*setupCall

	// streamDir is the lazily created spill directory for streamed keys
	// when no CacheDir is configured; Close removes it.
	streamMu  sync.Mutex
	streamDir string

	// srs is the lazily built proof-aggregation SRS (see aggregate.go).
	srsMu sync.Mutex
	srs   *ipp.SRS

	setups, memHits, diskHits           atomic.Uint64
	solves, proves, streamProves        atomic.Uint64
	spillProves, verifies, aggregates   atomic.Uint64
	setupNs, solveNs, proveNs, verifyNs atomic.Int64
	aggregateNs                         atomic.Int64
}

type setupCall struct {
	done       chan struct{}
	keys       *KeyPair
	err        error
	persistErr error
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 16
	}
	if opts.CacheEntries < 0 {
		opts.CacheEntries = 0 // unbounded in keyCache terms
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Rand == nil {
		opts.Rand = rand.Reader
	}
	return &Engine{
		opts:     opts,
		cache:    newKeyCache(opts.CacheEntries, opts.CacheDir),
		inflight: make(map[string]*setupCall),
	}
}

// acquire registers one unit of in-flight work against Close. It fails
// with ErrClosed once Close has run (or is waiting: a pending writer
// blocks new readers, so requests arriving during a drain are rejected
// as soon as it completes).
func (e *Engine) acquire() error {
	e.lifecycle.RLock()
	if e.closed {
		e.lifecycle.RUnlock()
		return ErrClosed
	}
	return nil
}

func (e *Engine) release() { e.lifecycle.RUnlock() }

// Close shuts the engine down gracefully: it waits for in-flight work —
// proves, setups, and their write-through disk cache persistence, all of
// which run under a lifecycle read lock — to drain, then marks the
// engine closed so every subsequent call fails with ErrClosed. The key
// caches (memory and disk) are left intact. Close is idempotent and safe
// to call concurrently.
func (e *Engine) Close() error {
	e.lifecycle.Lock()
	defer e.lifecycle.Unlock()
	e.closed = true
	// Remove the temporary spill directory, if one was created. Open
	// streamed-key handles stay readable until released (POSIX unlink
	// semantics), but no new work can reach them past this point.
	e.streamMu.Lock()
	if e.streamDir != "" {
		os.RemoveAll(e.streamDir)
		e.streamDir = ""
	}
	e.streamMu.Unlock()
	return nil
}

// shouldStream decides the proving-key backend for a system under the
// configured memory budget.
func (e *Engine) shouldStream(sys *r1cs.CompiledSystem) bool {
	if e.opts.MemoryBudget <= 0 {
		return false
	}
	raw, err := groth16.RawPKSizeBytes(sys)
	if err != nil {
		return false // setup will surface the real error
	}
	return raw > e.opts.MemoryBudget
}

// shouldSpillCS decides, for a circuit already past the streaming
// threshold, whether the constraint system and witness go out-of-core
// too: they do when their combined resident cost — the CSR section
// file encoding (a faithful proxy for the in-memory CSR arrays) plus
// one full wire assignment — exceeds the same budget the key was
// measured against. A solver-only cached system has no CSR to measure
// and can only be proved through its spill file, so it always spills.
func (e *Engine) shouldSpillCS(sys *r1cs.CompiledSystem) bool {
	if sys.Stripped() {
		return true
	}
	witnessBytes := int64(sys.NbWires) * int64(8*fr.Limbs)
	return r1cs.CSRRawSizeBytes(sys)+witnessBytes > e.opts.MemoryBudget
}

// SpillsConstraintSystem reports whether a prove of sys on this engine
// runs fully out-of-core — streamed key plus disk-resident CSR and
// spilled witness. Once a first prove has populated the disk tier,
// callers holding the compiled system only for re-proving can swap it
// for its StripForSolve copy and release the CSR arrays: the engine
// re-opens the constraint rows from its digest-keyed section file.
func (e *Engine) SpillsConstraintSystem(sys *r1cs.CompiledSystem) bool {
	return e.shouldStream(sys) && e.shouldSpillCS(sys)
}

// witnessPageBudget sizes the spilled witness's resident page cache: a
// quarter of the memory budget, leaving the rest for streamed-MSM
// windows and FFT scratch (r1cs.NewWitnessFile enforces its own small
// floor).
func (e *Engine) witnessPageBudget() int64 { return e.opts.MemoryBudget / 4 }

// csrPath is the digest-keyed spill location of a constraint system's
// section file, beside the streamed key it was set up into.
func csrPath(dir, digest string) string { return filepath.Join(dir, digest+".csr") }

// ensureCSFile returns an open, validated handle on the digest's CSR
// spill file, writing it from sys first when missing or corrupt. A
// solver-only (stripped) system cannot regenerate the file, so its
// absence is an error instructing the caller to resend the circuit.
func (e *Engine) ensureCSFile(sys *r1cs.CompiledSystem, digest string) (*r1cs.CompiledSystemFile, error) {
	dir, err := e.streamKeyDir()
	if err != nil {
		return nil, err
	}
	path := csrPath(dir, digest)
	if cf, err := r1cs.OpenCompiledSystemFile(path); err == nil {
		return cf, nil
	}
	if sys.Stripped() {
		return nil, fmt.Errorf("engine: no CSR spill file for digest %s and the cached circuit is solver-only (resend the compiled system)", digest)
	}
	if err := r1cs.WriteCompiledSystemFile(path, sys); err != nil {
		return nil, fmt.Errorf("engine: spill constraint system: %w", err)
	}
	cf, err := r1cs.OpenCompiledSystemFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: reopen spilled constraint system: %w", err)
	}
	return cf, nil
}

// cacheSystem picks what to retain beside the keys: in full
// out-of-core mode the CSR arrays live in the spill file, so the cache
// keeps only the solver program and input layout.
func cacheSystem(sys *r1cs.CompiledSystem, spill bool) *r1cs.CompiledSystem {
	if spill && !sys.Stripped() {
		return sys.StripForSolve()
	}
	return sys
}

// streamKeyDir resolves (creating if needed) the directory streamed
// keys spill into: the configured CacheDir, where the spill file
// doubles as the disk cache entry, or a process-lifetime temp dir.
func (e *Engine) streamKeyDir() (string, error) {
	if e.opts.CacheDir != "" {
		return e.opts.CacheDir, os.MkdirAll(e.opts.CacheDir, 0o755)
	}
	e.streamMu.Lock()
	defer e.streamMu.Unlock()
	if e.streamDir == "" {
		dir, err := os.MkdirTemp("", "zkrownn-stream-*")
		if err != nil {
			return "", err
		}
		e.streamDir = dir
	}
	return e.streamDir, nil
}

// existingStreamDir returns the spill directory only if one may already
// hold keys (never creates).
func (e *Engine) existingStreamDir() (string, bool) {
	if e.opts.CacheDir != "" {
		return e.opts.CacheDir, true
	}
	e.streamMu.Lock()
	defer e.streamMu.Unlock()
	return e.streamDir, e.streamDir != ""
}

// streamFromDisk opens a previously spilled streamed key for a digest.
// Any integrity or parse failure is a miss — the caller re-runs setup
// and overwrites the bad file.
func (e *Engine) streamFromDisk(digest string) (*KeyPair, bool) {
	dir, ok := e.existingStreamDir()
	if !ok {
		return nil, false
	}
	pkF, pkr, err := openFramed(filepath.Join(dir, digest+".pk"))
	if err != nil {
		return nil, false
	}
	spk, err := groth16.OpenStreamedProvingKey(pkr)
	if err != nil {
		pkF.Close()
		return nil, false
	}
	spk.Chunk = e.opts.StreamChunk
	spk.SpillDir = dir
	vkF, vkr, err := openFramed(filepath.Join(dir, digest+".vk"))
	if err != nil {
		pkF.Close()
		return nil, false
	}
	vk := new(groth16.VerifyingKey)
	_, err = vk.ReadFrom(bufio.NewReader(vkr))
	vkF.Close()
	if err != nil {
		pkF.Close()
		return nil, false
	}
	// pkF stays open for the key's lifetime: the StreamedProvingKey
	// reads through it on every prove. Its descriptor is reclaimed by
	// the runtime finalizer once the cache entry is evicted and
	// collected.
	return &KeyPair{VK: vk, Stream: spk}, true
}

// setupStreamed runs trusted setup in out-of-core mode: the proving key
// is spilled straight to a framed file (never materialized in RAM) and
// reopened as a StreamedProvingKey. When spill is set the constraint
// system goes out-of-core first — setup then streams its QAP
// accumulation from the CSR spill file, and the returned KeyPair
// carries the open handle for proves to share. persistErr carries a
// best-effort verifying-key persistence failure; err is fatal.
func (e *Engine) setupStreamed(sys *r1cs.CompiledSystem, digest string, spill bool, rng io.Reader) (kp *KeyPair, persistErr, err error) {
	dir, err := e.streamKeyDir()
	if err != nil {
		return nil, nil, err
	}
	var cons r1cs.Constraints = sys
	var csf *r1cs.CompiledSystemFile
	if spill {
		if csf, err = e.ensureCSFile(sys, digest); err != nil {
			return nil, nil, err
		}
		cons = csf
	}
	var vk *groth16.VerifyingKey
	pkPath := filepath.Join(dir, digest+".pk")
	if err := writeFramedFile(pkPath, func(w io.Writer) error {
		var serr error
		vk, serr = groth16.SetupStreamed(cons, rng, w)
		return serr
	}); err != nil {
		if csf != nil {
			csf.Close()
		}
		return nil, nil, fmt.Errorf("engine: streamed setup: %w", err)
	}
	pkF, pkr, err := openFramed(pkPath)
	if err != nil {
		if csf != nil {
			csf.Close()
		}
		return nil, nil, fmt.Errorf("engine: reopen spilled proving key: %w", err)
	}
	spk, err := groth16.OpenStreamedProvingKey(pkr)
	if err != nil {
		pkF.Close()
		if csf != nil {
			csf.Close()
		}
		return nil, nil, fmt.Errorf("engine: spilled proving key: %w", err)
	}
	spk.Chunk = e.opts.StreamChunk
	spk.SpillDir = dir
	persistErr = writeFramedFile(filepath.Join(dir, digest+".vk"), func(w io.Writer) error {
		_, werr := vk.WriteTo(w)
		return werr
	})
	return &KeyPair{VK: vk, Stream: spk, CSFile: csf}, persistErr, nil
}

// Keys returns the Groth16 key pair for a compiled system, running the
// trusted setup only when no cache tier holds the digest. The bool
// reports whether setup was skipped. Concurrent callers with the same
// digest share one setup execution. The compiled system is retained
// beside the keys (same LRU entry), so later requests may reference it
// by digest alone.
func (e *Engine) Keys(sys *r1cs.CompiledSystem, rng io.Reader) (*KeyPair, bool, error) {
	if err := e.acquire(); err != nil {
		return nil, false, err
	}
	defer e.release()
	keys, hit, _, _, err := e.keys(sys, rng, nil)
	return keys, hit, err
}

// Circuit returns the compiled system cached beside the keys for a
// digest, if the entry is still resident in the memory tier.
func (e *Engine) Circuit(digest string) (*r1cs.CompiledSystem, bool) {
	return e.cache.circuit(digest)
}

// DropMemoryCache empties the in-memory key/circuit cache; the disk
// tier is untouched, so later requests for a persisted digest pay a
// disk load (or, for streamed keys, a cheap re-index of the spilled
// file) instead of a re-setup. For operators this is the response to
// memory pressure; benchmarks use it so one circuit's measurement
// doesn't retain another's compiled system.
func (e *Engine) DropMemoryCache() {
	e.cache.clear()
}

func (e *Engine) keys(sys *r1cs.CompiledSystem, rng io.Reader, tr *obs.Trace) (keys *KeyPair, hit bool, digest string, persistErr error, err error) {
	digest = sys.DigestHex()
	if keys, ok := e.cache.getMem(digest, sys); ok {
		e.memHits.Add(1)
		mKeycacheMemHits.Inc()
		return keys, true, digest, nil, nil
	}

	e.inflightMu.Lock()
	if call, ok := e.inflight[digest]; ok {
		e.inflightMu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, false, digest, nil, call.err
		}
		// A waiter's wall-clock includes the setup it blocked on, so it
		// reports hit=false: its cost accounting must not read as "free"
		// even though it didn't execute the setup itself.
		return call.keys, false, digest, call.persistErr, nil
	}
	// Re-check the memory tier under inflightMu: another goroutine may
	// have finished setup and deregistered between our miss above and
	// taking the lock — without this, that window runs a redundant setup.
	if keys, ok := e.cache.getMem(digest, sys); ok {
		e.inflightMu.Unlock()
		e.memHits.Add(1)
		mKeycacheMemHits.Inc()
		return keys, true, digest, nil, nil
	}
	call := &setupCall{done: make(chan struct{})}
	e.inflight[digest] = call
	e.inflightMu.Unlock()

	// The disk load sits inside the singleflight so a cold-memory burst
	// of same-digest requests deserializes (or indexes) the key file
	// once, not once per worker.
	diskHit := false
	stream := e.shouldStream(sys)
	spill := stream && e.shouldSpillCS(sys)
	var fromDisk *KeyPair
	var ok bool
	sp := tr.Span("keys/disk-load")
	if stream {
		// In streamed mode the disk tier is the authoritative key
		// store; a hit costs one integrity pass plus section indexing,
		// never a full materialization.
		if fromDisk, ok = e.streamFromDisk(digest); ok {
			if spill {
				// The CSR spill file rides beside the key files; a
				// missing or corrupt one is rewritten from sys here. If
				// that fails (solver-only sys, dead disk) the hit is
				// voided and the setup path below reports the error.
				if csf, cerr := e.ensureCSFile(sys, digest); cerr == nil {
					fromDisk.CSFile = csf
				} else {
					fromDisk, ok = nil, false
				}
			}
			if ok {
				e.cache.putMem(digest, fromDisk, cacheSystem(sys, spill))
			}
		}
	} else {
		fromDisk, ok = e.cache.getDisk(digest, sys)
	}
	sp.End()
	if ok {
		e.diskHits.Add(1)
		mKeycacheDiskHits.Inc()
		call.keys = fromDisk
		diskHit = true
	} else if stream {
		mKeycacheMisses.Inc()
		sp := tr.Span("keys/setup-streamed")
		start := time.Now()
		kp, perr, serr := e.setupStreamed(sys, digest, spill, e.requestRand(rng))
		elapsed := time.Since(start)
		sp.End()
		if serr == nil {
			call.keys = kp
			e.setups.Add(1)
			e.setupNs.Add(int64(elapsed))
			observeSeconds(mSetupSeconds, elapsed)
			e.cache.putMem(digest, kp, cacheSystem(sys, spill))
			call.persistErr = perr
		}
		call.err = serr
	} else {
		mKeycacheMisses.Inc()
		sp := tr.Span("keys/setup")
		start := time.Now()
		pk, vk, serr := groth16.Setup(sys, e.requestRand(rng))
		elapsed := time.Since(start)
		sp.End()
		if serr == nil {
			call.keys = &KeyPair{PK: pk, VK: vk}
			e.setups.Add(1)
			e.setupNs.Add(int64(elapsed))
			observeSeconds(mSetupSeconds, elapsed)
			// Persistence is best-effort; a disk-tier write failure
			// leaves the keys cached in memory and the engine fully
			// functional.
			call.persistErr = e.cache.put(digest, call.keys, sys)
		}
		call.err = serr
	}

	e.inflightMu.Lock()
	delete(e.inflight, digest)
	e.inflightMu.Unlock()
	close(call.done)

	if call.err != nil {
		return nil, false, digest, nil, call.err
	}
	return call.keys, diskHit, digest, call.persistErr, nil
}

// Prove runs one job end-to-end: keys from the cache (or a fresh setup)
// and then the Groth16 prover. The returned Result always has Err nil —
// errors are returned — but shares its layout with ProveMany results.
func (e *Engine) Prove(req Request) (*Result, error) {
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	res := e.prove(req)
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

func (e *Engine) prove(req Request) *Result {
	res := &Result{Name: req.Name}
	tr := obs.TraceFrom(req.Ctx)
	sys := req.System
	if sys == nil {
		if req.Digest == "" {
			res.Err = errors.New("engine: request has no constraint system")
			return res
		}
		cached, ok := e.cache.circuit(req.Digest)
		if !ok {
			res.Err = fmt.Errorf("engine: no cached circuit for digest %s (resend the compiled system)", req.Digest)
			return res
		}
		sys = cached
	}

	sp := tr.Span("engine/keys")
	start := time.Now()
	keys, hit, digest, persistErr, err := e.keys(sys, req.Rand, tr)
	res.SetupTime = time.Since(start)
	sp.End()
	res.Digest = digest
	res.CacheHit = hit
	res.PersistErr = persistErr
	if err != nil {
		mProveErrorsTotal.Inc()
		res.Err = fmt.Errorf("engine: setup: %w", err)
		return res
	}
	res.Keys = keys

	if sys.Stripped() && keys.CSFile == nil {
		// A solver-only circuit copy has placeholder CSR arrays; proving
		// against it without the spill file would silently "satisfy"
		// empty constraints. The cache pairs stripped systems with their
		// CSFile, so this only trips on a programming error.
		mProveErrorsTotal.Inc()
		res.Err = errors.New("engine: cached circuit is solver-only but no CSR spill file is attached")
		return res
	}

	// In full out-of-core mode an input-assignment request solves
	// straight into a disk-backed witness tape; the prover then reads
	// wires back through the same file. A caller-supplied witness stays
	// resident (it already was), but still proves against the CSR file.
	witness := req.Witness
	var wf *r1cs.WitnessFile
	if witness == nil && keys.CSFile != nil {
		dir, derr := e.streamKeyDir()
		if derr == nil {
			wf, derr = r1cs.NewWitnessFile(dir, sys.NbWires, e.witnessPageBudget())
		}
		if derr != nil {
			mProveErrorsTotal.Inc()
			res.Err = fmt.Errorf("engine: witness spill store: %w", derr)
			return res
		}
		defer wf.Close()
	}
	if witness == nil {
		sp = tr.Span("engine/solve")
		start = time.Now()
		if wf != nil {
			err = sys.SolveSpilled(req.Public, req.Secret, wf, tr)
		} else {
			witness, err = sys.Solve(req.Public, req.Secret)
		}
		res.SolveTime = time.Since(start)
		sp.End()
		if err != nil {
			mProveErrorsTotal.Inc()
			res.Err = fmt.Errorf("engine: solve: %w", err)
			return res
		}
		e.solves.Add(1)
		e.solveNs.Add(int64(res.SolveTime))
		observeSeconds(mSolveSeconds, res.SolveTime)
	}
	if wf != nil {
		// Only the instance comes back resident: public wires [1, NbPublic).
		if n := sys.NbPublic - 1; n > 0 {
			pub := make([]fr.Element, n)
			if err := wf.ReadRange(pub, 1); err != nil {
				mProveErrorsTotal.Inc()
				res.Err = fmt.Errorf("engine: read spilled public inputs: %w", err)
				return res
			}
			res.PublicInputs = pub
		} else {
			res.PublicInputs = []fr.Element{}
		}
	} else {
		res.Witness = witness
		res.PublicInputs = sys.PublicValues(witness)
	}

	sp = tr.Span("engine/prove")
	start = time.Now()
	var proof *groth16.Proof
	if keys.Stream != nil {
		// The caller chose streaming to bound resident memory; collect
		// the setup/solve phases' garbage and return the freed pages
		// before entering the bounded-memory prove, so its footprint is
		// the pipeline's, not the allocator's leftovers.
		debug.FreeOSMemory()
		switch {
		case wf != nil:
			proof, err = groth16.ProveStreamedSpilled(keys.CSFile, keys.Stream, wf, e.requestRand(req.Rand), tr)
		case keys.CSFile != nil:
			proof, err = groth16.ProveStreamedTraced(keys.CSFile, keys.Stream, witness, e.requestRand(req.Rand), tr)
		default:
			proof, err = groth16.ProveStreamedTraced(sys, keys.Stream, witness, e.requestRand(req.Rand), tr)
		}
	} else {
		proof, err = groth16.ProveTraced(sys, keys.PK, witness, e.requestRand(req.Rand), tr)
	}
	res.ProveTime = time.Since(start)
	sp.End()
	if err != nil {
		mProveErrorsTotal.Inc()
		res.Err = fmt.Errorf("engine: prove: %w", err)
		return res
	}
	e.proves.Add(1)
	mProvesTotal.Inc()
	if keys.Stream != nil {
		e.streamProves.Add(1)
		mStreamProvesTotal.Inc()
	}
	if keys.CSFile != nil {
		e.spillProves.Add(1)
		mSpillProvesTotal.Inc()
	}
	e.proveNs.Add(int64(res.ProveTime))
	observeSeconds(mProveSeconds, res.ProveTime)
	res.Proof = proof
	return res
}

// ProveMany runs the requests on the engine's worker pool and returns
// one Result per request, order-preserving. Requests sharing a circuit
// digest trigger a single trusted setup no matter how the pool
// interleaves them. Failed requests carry their error in Result.Err;
// the rest of the batch completes.
func (e *Engine) ProveMany(reqs []Request) []*Result {
	results := make([]*Result, len(reqs))
	if err := e.acquire(); err != nil {
		for i := range reqs {
			results[i] = &Result{Name: reqs[i].Name, Err: err}
		}
		return results
	}
	defer e.release()
	workers := e.opts.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			results[i] = e.prove(reqs[i])
		}
		return results
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.prove(reqs[i])
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Verify checks one proof against its public inputs.
func (e *Engine) Verify(vk *groth16.VerifyingKey, proof *groth16.Proof, public []fr.Element) error {
	return e.VerifyCtx(nil, vk, proof, public)
}

// VerifyCtx is Verify honoring request-scoped telemetry: a trace on ctx
// (obs.ContextWithTrace) receives the verifier's MSM and pairing spans.
func (e *Engine) VerifyCtx(ctx context.Context, vk *groth16.VerifyingKey, proof *groth16.Proof, public []fr.Element) error {
	if err := e.acquire(); err != nil {
		return err
	}
	defer e.release()
	start := time.Now()
	err := groth16.VerifyTraced(vk, proof, public, obs.TraceFrom(ctx))
	e.verifies.Add(1)
	mVerifiesTotal.Inc()
	elapsed := time.Since(start)
	e.verifyNs.Add(int64(elapsed))
	observeSeconds(mVerifySeconds, elapsed)
	return err
}

// VerifyMany checks many proofs under one verifying key with a single
// combined pairing product (groth16.BatchVerify) — the verifier-side
// analogue of ProveMany.
func (e *Engine) VerifyMany(vk *groth16.VerifyingKey, proofs []*groth16.Proof, publicInputs [][]fr.Element) error {
	if err := e.acquire(); err != nil {
		return err
	}
	defer e.release()
	start := time.Now()
	err := groth16.BatchVerify(vk, proofs, publicInputs, e.requestRand(nil))
	e.verifies.Add(uint64(len(proofs)))
	mVerifiesTotal.Add(uint64(len(proofs)))
	elapsed := time.Since(start)
	e.verifyNs.Add(int64(elapsed))
	observeSeconds(mVerifySeconds, elapsed)
	return err
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Setups:        e.setups.Load(),
		MemHits:       e.memHits.Load(),
		DiskHits:      e.diskHits.Load(),
		Solves:        e.solves.Load(),
		Proves:        e.proves.Load(),
		StreamProves:  e.streamProves.Load(),
		SpillProves:   e.spillProves.Load(),
		Verifies:      e.verifies.Load(),
		Aggregates:    e.aggregates.Load(),
		SetupTime:     time.Duration(e.setupNs.Load()),
		SolveTime:     time.Duration(e.solveNs.Load()),
		ProveTime:     time.Duration(e.proveNs.Load()),
		VerifyTime:    time.Duration(e.verifyNs.Load()),
		AggregateTime: time.Duration(e.aggregateNs.Load()),
	}
}

// CachedKeys reports the number of key pairs resident in memory.
func (e *Engine) CachedKeys() int { return e.cache.len() }

// ClearCache releases every in-memory key pair (proving keys can run to
// hundreds of MB) so long-lived embedders can reclaim the memory; the
// disk tier, when configured, is left intact and repopulates the memory
// tier on the next request.
func (e *Engine) ClearCache() { e.cache.clear() }

// requestRand resolves the effective randomness source for one request.
// User-supplied readers (deterministic test sources, typically
// math/rand) are not concurrency-safe, and the same reader may back
// several requests running on different pool workers, so all of them
// share one package-wide lock. crypto/rand — the production default —
// bypasses it.
func (e *Engine) requestRand(override io.Reader) io.Reader {
	r := override
	if r == nil {
		r = e.opts.Rand
	}
	if r == rand.Reader {
		return r // crypto/rand is already concurrency-safe
	}
	return &lockedReader{r: r}
}

// userRandMu serializes every read from user-supplied randomness
// sources, whichever requests they arrived with.
var userRandMu sync.Mutex

type lockedReader struct {
	r io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	userRandMu.Lock()
	defer userRandMu.Unlock()
	return l.r.Read(p)
}
