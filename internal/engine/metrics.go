package engine

import (
	"time"

	"zkrownn/internal/obs"
)

// Engine-level metrics on the process-wide obs registry. Registration
// is idempotent, so multiple engines in one process share the series —
// matching the exposition model where /metrics reports the process, not
// one engine instance.
var (
	mSetupSeconds = obs.Default().Histogram("zkrownn_setup_seconds",
		"Trusted setup wall-clock time (executed setups only, not cache hits).", obs.TimeBuckets())
	mSolveSeconds = obs.Default().Histogram("zkrownn_solve_seconds",
		"Witness generation (solver-program replay) wall-clock time.", obs.TimeBuckets())
	mProveSeconds = obs.Default().Histogram("zkrownn_prove_seconds",
		"Groth16 prove wall-clock time per proof.", obs.TimeBuckets())
	mVerifySeconds = obs.Default().Histogram("zkrownn_verify_seconds",
		"Groth16 verify wall-clock time per call (batched calls count once).", obs.TimeBuckets())

	mKeycacheMemHits = obs.Default().Counter(`zkrownn_keycache_hits_total{tier="memory"}`,
		"Key lookups served from a cache tier, by tier.")
	mKeycacheDiskHits = obs.Default().Counter(`zkrownn_keycache_hits_total{tier="disk"}`,
		"Key lookups served from a cache tier, by tier.")
	mKeycacheMisses = obs.Default().Counter("zkrownn_keycache_misses_total",
		"Key lookups that ran a trusted setup.")

	mProvesTotal = obs.Default().Counter("zkrownn_proves_total",
		"Proofs produced.")
	mStreamProvesTotal = obs.Default().Counter("zkrownn_stream_proves_total",
		"Proofs produced by the out-of-core (streamed-key) backend.")
	mSpillProvesTotal = obs.Default().Counter("zkrownn_spill_proves_total",
		"Proofs produced fully out-of-core (streamed key, disk-resident CSR, spilled witness).")
	mProveErrorsTotal = obs.Default().Counter("zkrownn_prove_errors_total",
		"Prove requests that failed at any stage.")
	mVerifiesTotal = obs.Default().Counter("zkrownn_verifies_total",
		"Proofs verified (batched proofs count individually).")
)

func observeSeconds(h *obs.Histogram, d time.Duration) {
	h.Observe(d.Seconds())
}
