package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Cache files carry a 16-byte integrity frame so truncation or
// corruption — a crash mid-rename, a bit flip on a long-lived cache
// volume — is detected at open time and degrades to a cache miss
// (re-run trusted setup) instead of feeding the prover garbage points
// or failing hard. The streamed prover in particular reads key sections
// lazily over many proofs, so validating the whole file once at open is
// what lets every later read skip per-chunk verification.
//
// Layout:
//
//	offset 0   magic "ZKF1"            (4 bytes)
//	offset 4   payload length, uint64  (8 bytes, little-endian)
//	offset 12  CRC-32C of the payload  (4 bytes, little-endian)
//	offset 16  payload
var framedMagic = [4]byte{'Z', 'K', 'F', '1'}

const framedHeaderSize = 16

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame marks an integrity failure; cache lookups translate it
// into a miss.
var errBadFrame = errors.New("engine: cache file failed integrity check")

type byteCounter struct{ n uint64 }

func (b *byteCounter) Write(p []byte) (int, error) {
	b.n += uint64(len(p))
	return len(p), nil
}

// writeFramedFile writes path atomically (temp file + rename) with the
// integrity frame. fn streams the payload without knowing its size —
// the header is patched in after the payload completes, before the
// rename publishes the file.
func writeFramedFile(path string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var zero [framedHeaderSize]byte
	if _, err := tmp.Write(zero[:]); err != nil {
		tmp.Close()
		return err
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	crc := crc32.New(crcTable)
	cnt := &byteCounter{}
	if err := fn(io.MultiWriter(bw, crc, cnt)); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	var hdr [framedHeaderSize]byte
	copy(hdr[0:4], framedMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], cnt.n)
	binary.LittleEndian.PutUint32(hdr[12:16], crc.Sum32())
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// openFramed opens a framed cache file and fully validates it — magic,
// recorded payload length against the on-disk size, and the payload
// CRC (one sequential pass). On success it returns the open file and a
// SectionReader over the payload; the caller owns the file's lifetime
// (the SectionReader reads through it). Any failure returns an error
// the cache layer treats as a miss.
func openFramed(path string) (*os.File, *io.SectionReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	sr, err := validateFrame(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, sr, nil
}

func validateFrame(f *os.File) (*io.SectionReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < framedHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame header", errBadFrame, st.Size())
	}
	var hdr [framedHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != framedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errBadFrame, hdr[0:4])
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[4:12])
	if got := uint64(st.Size() - framedHeaderSize); payloadLen != got {
		return nil, fmt.Errorf("%w: header records %d payload bytes, file holds %d", errBadFrame, payloadLen, got)
	}
	crc := crc32.New(crcTable)
	if _, err := io.Copy(crc, io.NewSectionReader(f, framedHeaderSize, int64(payloadLen))); err != nil {
		return nil, err
	}
	if crc.Sum32() != binary.LittleEndian.Uint32(hdr[12:16]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", errBadFrame)
	}
	return io.NewSectionReader(f, framedHeaderSize, int64(payloadLen)), nil
}
