package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records a tree of timed spans for one job. The zero point is
// the trace's creation; span offsets are monotonic-clock durations
// from it, so the exported timeline is immune to wall-clock steps.
//
// The off path is the whole design: a nil *Trace is valid everywhere —
// Span on a nil trace returns a nil *Span, and every Span method is a
// nil-receiver no-op — so instrumented code carries no branches beyond
// the nil checks the method calls themselves perform, and zero
// allocations when tracing is disabled.
type Trace struct {
	start time.Time
	lanes atomic.Int64

	mu     sync.Mutex
	events []Event
}

// Event is one completed span.
type Event struct {
	Name  string
	Lane  int // Chrome trace tid: spans on one lane render as a stack
	Start time.Duration
	Dur   time.Duration
}

// NewTrace starts an empty trace anchored at the current time.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Span is one open interval on a trace. End records it; a Span must
// not be ended twice.
type Span struct {
	tr    *Trace
	name  string
	lane  int
	start time.Duration
	pool  *Lanes // when set, End returns the lane to the pool
}

// Span opens a span named name on lane 0 — the main prover timeline.
// Safe on a nil Trace (returns nil).
func (t *Trace) Span(name string) *Span { return t.SpanLane(name, 0) }

// SpanLane opens a span on an explicit lane. Concurrent spans (MSM
// windows, stream prefetch) take distinct lanes so trace viewers
// render them as parallel rows instead of a corrupt stack. Safe on a
// nil Trace.
func (t *Trace) SpanLane(name string, lane int) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, lane: lane, start: time.Since(t.start)}
}

// NextLane reserves a fresh lane id ≥ 1 for a concurrent span group.
// Safe on a nil Trace (returns 0).
func (t *Trace) NextLane() int {
	if t == nil {
		return 0
	}
	return int(t.lanes.Add(1))
}

// End closes the span and appends it to its trace. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := Event{Name: s.name, Lane: s.lane, Start: s.start, Dur: time.Since(s.tr.start) - s.start}
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, ev)
	s.tr.mu.Unlock()
	if s.pool != nil {
		s.pool.ch <- s.lane
	}
}

// Lanes hands out lanes to a group of concurrent spans (parallel MSM
// window tasks) such that spans sharing a lane never overlap in time —
// the invariant trace viewers need to render each lane as a clean row.
// A span acquired from the pool returns its lane on End.
type Lanes struct {
	tr *Trace
	ch chan int
}

// Lanes reserves width fresh lanes for a concurrent span group. Safe
// on a nil Trace (returns nil).
func (t *Trace) Lanes(width int) *Lanes {
	if t == nil {
		return nil
	}
	if width < 1 {
		width = 1
	}
	l := &Lanes{tr: t, ch: make(chan int, width)}
	for i := 0; i < width; i++ {
		l.ch <- t.NextLane()
	}
	return l
}

// Span opens a span on a free lane, blocking while all lanes are busy
// (callers size the pool to their worker count, so this never blocks
// in practice). Safe on a nil pool (returns nil).
func (l *Lanes) Span(name string) *Span {
	if l == nil {
		return nil
	}
	s := l.tr.SpanLane(name, <-l.ch)
	s.pool = l
	return s
}

// Events returns a copy of the recorded spans (completion order). Safe
// on a nil Trace (returns nil).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Totals sums recorded span durations by name — the aggregation behind
// the bench per-phase breakdown. Safe on a nil Trace (returns nil).
func (t *Trace) Totals() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.events))
	for _, ev := range t.events {
		out[ev.Name] += ev.Dur
	}
	return out
}

// WriteChrome writes the trace in the Chrome trace-event JSON array
// format ("X" complete events, microsecond units) — loadable directly
// in chrome://tracing or https://ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := t.Events()
	// Stable order for goldens and diffing: by start, then lane.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Lane < events[j].Lane
	})
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		// Microseconds with nanosecond precision; Chrome accepts floats.
		if _, err := fmt.Fprintf(w, "  {\"name\":%q,\"cat\":\"zkrownn\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}%s\n",
			ev.Name, float64(ev.Start)/1e3, float64(ev.Dur)/1e3, ev.Lane, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace to a context for propagation
// across API boundaries (service → queue → engine).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom extracts the trace from a context, nil when absent (or
// when ctx itself is nil) — feeding directly into the nil-trace fast
// path.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
