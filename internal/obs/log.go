package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// idCounter backs the fallback request-ID source when crypto/rand is
// unavailable (it never is in practice, but IDs must not collide even
// then).
var idCounter atomic.Uint64

// NewID returns a short random hex identifier for correlating one
// request's log lines, job records, and trace across the service.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "seq-" + strconv.FormatUint(idCounter.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}
