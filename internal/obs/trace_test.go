package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	outer := tr.Span("prove")
	time.Sleep(time.Millisecond)
	inner := tr.Span("prove/msm-a")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Completion order: inner ends first.
	if evs[0].Name != "prove/msm-a" || evs[1].Name != "prove" {
		t.Errorf("event order = %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[1].Start > evs[0].Start {
		t.Error("outer span started after inner")
	}
	if evs[1].Dur < evs[0].Dur {
		t.Error("outer span shorter than nested inner span")
	}
	tot := tr.Totals()
	if tot["prove"] < 2*time.Millisecond {
		t.Errorf("prove total = %v, want ≥ 2ms", tot["prove"])
	}
}

// TestNilTrace pins the off path: every method on a nil trace/span is
// a safe no-op and — via the benchmark below — allocation-free.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	sp := tr.Span("x")
	sp.End()
	if tr.Events() != nil || tr.Totals() != nil {
		t.Error("nil trace returned non-nil data")
	}
	if tr.NextLane() != 0 {
		t.Error("nil trace allocated a lane")
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("nil trace chrome dump = %q", b.String())
	}
}

func TestNilSpanAllocFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.SpanLane("prove/msm-a", 0)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-trace span cycle allocates %v times, want 0", allocs)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTrace()
	s := tr.Span("solve")
	time.Sleep(time.Millisecond)
	s.End()
	lane := tr.NextLane()
	tr.SpanLane("msm/w0", lane).End()

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("chrome dump is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("ph = %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("ts missing or not a number: %v", ev["ts"])
		}
	}
	// Sorted by start: solve began first.
	if events[0]["name"] != "solve" {
		t.Errorf("first event = %v, want solve", events[0]["name"])
	}
	if events[1]["tid"].(float64) != float64(lane) {
		t.Errorf("lane event tid = %v, want %d", events[1]["tid"], lane)
	}
}

func TestContextPropagation(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Error("empty context yielded a trace")
	}
	if TraceFrom(nil) != nil { //nolint:staticcheck // nil ctx is the documented engine default
		t.Error("nil context yielded a trace")
	}
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace did not round-trip through context")
	}
}

// TestTraceConcurrent exercises the span recorder from many goroutines
// (the ProveMany shape); under -race it is the recorder's
// thread-safety proof.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	const workers, spans = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := tr.NextLane()
			for i := 0; i < spans; i++ {
				tr.SpanLane("msm/window", lane).End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()); got != workers*spans {
		t.Errorf("recorded %d events, want %d", got, workers*spans)
	}
}

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if a == b {
		t.Errorf("consecutive IDs collided: %q", a)
	}
	if len(a) != 16 {
		t.Errorf("ID %q has length %d, want 16", a, len(a))
	}
}
