package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte-for-byte: the
// CI smoke and any real Prometheus scraper parse this text, so format
// drift is a breaking change.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`test_hits_total{tier="memory"}`, "Cache hits by tier.").Add(3)
	r.Counter(`test_hits_total{tier="disk"}`, "Cache hits by tier.").Inc()
	r.Gauge("test_depth", "Queue depth.").Set(2)
	r.GaugeFunc("test_fn", "Func gauge.", func() float64 { return 1.5 })
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 2
# HELP test_fn Func gauge.
# TYPE test_fn gauge
test_fn 1.5
# HELP test_hits_total Cache hits by tier.
# TYPE test_hits_total counter
test_hits_total{tier="memory"} 3
test_hits_total{tier="disk"} 1
# HELP test_seconds Latency.
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 1
test_seconds_bucket{le="1"} 3
test_seconds_bucket{le="+Inf"} 4
test_seconds_sum 11.05
test_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent checks that re-registration returns the same
// metric — the property that lets independent subsystems share the
// default registry.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("idem_total", "h")
	c2 := r.Counter("idem_total", "h")
	if c1 != c2 {
		t.Error("counter re-registration returned a distinct metric")
	}
	c1.Add(2)
	if c2.Value() != 2 {
		t.Errorf("shared counter = %d, want 2", c2.Value())
	}
	h1 := r.Histogram("idem_seconds", "h", []float64{1, 2})
	h2 := r.Histogram("idem_seconds", "h", []float64{9, 10, 11})
	if h1 != h2 {
		t.Error("histogram re-registration returned a distinct metric")
	}
	if len(h2.Snapshot().Bounds) != 2 {
		t.Error("re-registration replaced the original bounds")
	}

	// GaugeFunc is the exception: the latest closure wins, so a
	// restarted subsystem doesn't leave a stale reader behind.
	r.GaugeFunc("idem_fn", "h", func() float64 { return 1 })
	r.GaugeFunc("idem_fn", "h", func() float64 { return 7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "idem_fn 7") {
		t.Errorf("gauge func not replaced:\n%s", b.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind_total", "h")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("kind_total", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hb_seconds", "h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 1e6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // ≤1: {0.5, 1}; ≤10: {1.5, 10}; ≤100: {99, 100}; +Inf: {1e6}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-1000212.0) > 1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

// TestRegistryConcurrent hammers registration, updates, and scrapes
// from many goroutines; run under -race in CI it is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "h").Inc()
				r.Gauge("conc_depth", "h").Add(1)
				r.Histogram("conc_seconds", "h", []float64{0.1, 1, 10}).Observe(float64(i))
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "h").Value(); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("conc_seconds", "h", nil).Snapshot().Count; got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
}

// BenchmarkHistogramObserve guards the allocation-free claim for the
// hot-path observation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "h", TimeBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
