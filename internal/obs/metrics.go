// Package obs is ZKROWNN's zero-dependency telemetry subsystem: a
// concurrent metrics registry with Prometheus text exposition, a
// lightweight span tracer with Chrome trace-event export, and small
// structured-logging helpers. Everything is stdlib-only.
//
// The design target is "free when off, cheap when on": counters and
// histogram observations are single atomic operations with no
// allocation, and the tracer's entire off path is a nil-receiver check
// (a nil *Trace produces nil *Span whose End is a no-op), so
// instrumentation can live permanently on prover hot paths — FFT
// levels, MSM windows, stream-chunk waits — without moving the
// benchmarks it exists to explain.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are
// allocation-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Stored as float64 bits so
// Set/Add are lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop, allocation-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are preallocated at
// registration; Observe is one binary search plus two atomic updates
// and never allocates, so it is safe on prover hot paths.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implied after the last
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	total   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) → +Inf
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state,
// with non-cumulative per-bucket counts (Counts[i] observations were ≤
// Bounds[i]; the final entry is the +Inf bucket).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state. Per-bucket reads are atomic but
// the cut is not globally consistent, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor — the standard latency-histogram
// shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// TimeBuckets is the default prover-latency bucket layout: 1 ms to
// ~2 min, doubling. Setup on paper-scale circuits sits near the top,
// sub-millisecond verifies in the first bucket.
func TimeBuckets() []float64 { return ExpBuckets(0.001, 2, 18) }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case histogramKind:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance within a metric family.
type series struct {
	labels string // `tier="memory"` — canonical text between the braces, may be empty
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name (and therefore one
// HELP/TYPE pair in the exposition).
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label strings in registration order
	series map[string]*series
}

// Registry is a concurrent metrics registry. Registration is
// idempotent: asking for an existing name+labels returns the existing
// metric, so several subsystems (or several engines in one process)
// can share the default registry without coordination. Metric
// operations after registration touch only atomics.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that /metrics serves.
func Default() *Registry { return defaultRegistry }

// splitName separates `fam{label="x"}` into family and label text.
func splitName(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// lookup returns (creating if needed) the series for name, checking
// kind consistency. help is kept from the first registration.
func (r *Registry) lookup(name, help string, kind metricKind) *series {
	fam, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[fam]
	if f == nil {
		f = &family{name: fam, help: help, kind: kind, series: make(map[string]*series)}
		r.families[fam] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", fam, f.kind, kind))
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Counter returns the counter registered under name, creating it on
// first use. name may carry labels: `zkrownn_keycache_hits_total{tier="memory"}`.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.lookup(name, help, counterKind)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.lookup(name, help, gaugeKind)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers (or replaces) a gauge whose value is read from
// fn at scrape time — the shape for values owned elsewhere, like queue
// depth. Re-registration replaces the function so a restarted
// subsystem's closure wins over a stale one.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.lookup(name, help, gaugeFuncKind)
	s.fn = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (bounds are ignored
// on later lookups; a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	s := r.lookup(name, help, histogramKind)
	if s.h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		s.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return s.h
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges a series' labels with one extra pair (used for the
// le label on histogram buckets).
func joinLabels(labels, extra string) string {
	switch {
	case labels == "":
		return extra
	case extra == "":
		return labels
	default:
		return labels + "," + extra
	}
}

func writeSeries(w io.Writer, fam, labels, value string) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", fam, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", fam, labels, value)
	}
	return err
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series in registration order, histograms with cumulative buckets,
// +Inf, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, labels := range f.order {
			s := f.series[labels]
			switch f.kind {
			case counterKind:
				if err := writeSeries(w, f.name, labels, strconv.FormatUint(s.c.Value(), 10)); err != nil {
					return err
				}
			case gaugeKind:
				if err := writeSeries(w, f.name, labels, formatFloat(s.g.Value())); err != nil {
					return err
				}
			case gaugeFuncKind:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				if err := writeSeries(w, f.name, labels, formatFloat(v)); err != nil {
					return err
				}
			case histogramKind:
				snap := s.h.Snapshot()
				cum := uint64(0)
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatFloat(snap.Bounds[i])
					}
					bl := joinLabels(labels, `le="`+le+`"`)
					if err := writeSeries(w, f.name+"_bucket", bl, strconv.FormatUint(cum, 10)); err != nil {
						return err
					}
				}
				if err := writeSeries(w, f.name+"_sum", labels, formatFloat(snap.Sum)); err != nil {
					return err
				}
				if err := writeSeries(w, f.name+"_count", labels, strconv.FormatUint(snap.Count, 10)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
