// Package fixpoint defines the signed binary fixed-point representation
// shared by the in-circuit gadgets and the plain integer reference
// simulator. The paper (§III-B) avoids floating point inside zkSNARK
// circuits by scaling inputs "by several orders of magnitude and
// truncating"; this package pins down those semantics exactly so that
// watermark extraction inside the circuit is bit-identical to extraction
// outside it:
//
//   - a real number x is represented as round(x·2^f) for f fraction bits;
//   - products of two fixed-point numbers carry 2f fraction bits and are
//     rescaled by floor division by 2^f (arithmetic shift, rounding
//     toward -∞), matching the circuit's shift-and-decompose truncation
//     gadget.
package fixpoint

import (
	"fmt"
	"math"
	"math/big"

	"zkrownn/internal/bn254/fr"
)

// Params fixes the fixed-point format.
type Params struct {
	// FracBits is f, the number of fraction bits (scale 2^f).
	FracBits int
	// MagBits bounds the magnitude of representable values:
	// |v| < 2^(MagBits) in scaled integer units. It determines range-check
	// widths inside circuits. MagBits counts scaled-integer bits, i.e.
	// it already includes the f fraction bits.
	MagBits int
}

// Default16 is the default format: 16 fraction bits with generous
// 44-bit magnitudes, comfortably covering dense-layer accumulations of
// 784-wide inner products over [-128, 128) activations.
var Default16 = Params{FracBits: 16, MagBits: 44}

// Scale returns 2^f as an int64.
func (p Params) Scale() int64 { return 1 << uint(p.FracBits) }

// Validate checks that the format fits comfortably in int64 arithmetic
// (products need 2·MagBits bits plus sign).
func (p Params) Validate() error {
	if p.FracBits <= 0 || p.FracBits > 30 {
		return fmt.Errorf("fixpoint: FracBits %d out of range (1..30)", p.FracBits)
	}
	if p.MagBits <= p.FracBits {
		return fmt.Errorf("fixpoint: MagBits %d must exceed FracBits %d", p.MagBits, p.FracBits)
	}
	if p.MagBits > 50 {
		// MagBits bounds *accumulated* values (range-check width in
		// circuits). Values that are multiplied together are much
		// smaller; callers must keep bits(a)+bits(b) ≤ 63 per product,
		// which every gadget in this repository does by construction.
		return fmt.Errorf("fixpoint: MagBits %d too large (max 50)", p.MagBits)
	}
	return nil
}

// Encode converts a float to the scaled integer representation
// (round-to-nearest).
func (p Params) Encode(x float64) int64 {
	return int64(math.Round(x * float64(p.Scale())))
}

// Decode converts a scaled integer back to a float.
func (p Params) Decode(v int64) float64 {
	return float64(v) / float64(p.Scale())
}

// EncodeSlice encodes a float slice.
func (p Params) EncodeSlice(xs []float64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = p.Encode(x)
	}
	return out
}

// DecodeSlice decodes a scaled-integer slice.
func (p Params) DecodeSlice(vs []int64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = p.Decode(v)
	}
	return out
}

// Rescale divides by 2^f rounding toward -∞ (arithmetic shift), the
// canonical post-multiplication truncation.
func (p Params) Rescale(v int64) int64 {
	return v >> uint(p.FracBits)
}

// MulRescale multiplies two fixed-point values and rescales the result
// back to f fraction bits.
func (p Params) MulRescale(a, b int64) int64 {
	return p.Rescale(a * b)
}

// InRange reports whether v respects the magnitude bound.
func (p Params) InRange(v int64) bool {
	bound := int64(1) << uint(p.MagBits)
	return v > -bound && v < bound
}

// ToField maps a signed scaled integer into F_r (negative values wrap to
// r - |v|), the encoding used for circuit wires.
func ToField(v int64) fr.Element {
	var e fr.Element
	e.SetInt64(v)
	return e
}

// ToFieldSlice maps a scaled-integer slice into field elements.
func ToFieldSlice(vs []int64) []fr.Element {
	out := make([]fr.Element, len(vs))
	for i, v := range vs {
		out[i] = ToField(v)
	}
	return out
}

// FromField recovers a signed integer from its field encoding. Values in
// (r/2, r) are interpreted as negative. An error is returned when the
// magnitude exceeds 2^62 (not a plausible fixed-point value).
func FromField(e *fr.Element) (int64, error) {
	v := e.ToBigInt()
	half := new(big.Int).Rsh(fr.Modulus(), 1)
	neg := false
	if v.Cmp(half) > 0 {
		v.Sub(fr.Modulus(), v)
		neg = true
	}
	if v.BitLen() > 62 {
		return 0, fmt.Errorf("fixpoint: field value too large for int64 (%d bits)", v.BitLen())
	}
	out := v.Int64()
	if neg {
		out = -out
	}
	return out, nil
}

// SigmoidCoefficients returns the scaled Chebyshev coefficients of the
// paper's degree-9 sigmoid approximation (§III-B.3):
//
//	S(x) = 0.5 + 0.2159198015·x - 0.0082176259·x³ + 0.0001825597·x⁵
//	     - 0.0000018848·x⁷ + 0.0000000072·x⁹
//
// Index i holds the coefficient of x^(2i+1); C0 (at f fraction bits) is
// returned separately. The odd coefficients are scaled by 2^(2f) — the
// degree-7 and degree-9 coefficients would truncate to zero at 2^f
// ("scaling by several orders of magnitude", §III-B) — so each term
// product must be rescaled by coeffFracBits = 2f.
func (p Params) SigmoidCoefficients() (c0 int64, odd [5]int64, coeffFracBits int) {
	coeffFracBits = 2 * p.FracBits
	scale := math.Ldexp(1, coeffFracBits)
	c0 = p.Encode(0.5)
	for i, c := range []float64{
		0.2159198015, -0.0082176259, 0.0001825597, -0.0000018848, 0.0000000072,
	} {
		odd[i] = int64(math.Round(c * scale))
	}
	return c0, odd, coeffFracBits
}

// SigmoidClampAbs bounds the sigmoid input: the degree-9 Chebyshev
// approximation is only meaningful on a bounded interval, and clamping
// keeps every in-circuit intermediate inside its range check. Inputs are
// saturated to ±SigmoidClampAbs before evaluation (threshold decisions
// for |x| ≥ 8 are sign-determined, so extraction semantics are
// unaffected).
const SigmoidClampAbs = 8.0

// ClampSigmoidInput saturates a scaled value to ±SigmoidClampAbs.
func (p Params) ClampSigmoidInput(x int64) int64 {
	bound := p.Encode(SigmoidClampAbs)
	if x > bound {
		return bound
	}
	if x < -bound {
		return -bound
	}
	return x
}

// SigmoidPoly evaluates the fixed-point sigmoid polynomial with the
// exact operation order the circuit gadget uses: the input is clamped to
// ±SigmoidClampAbs, odd powers are built by successive MulRescale with
// x², each term is scaled by the 2f-bit coefficient and floor-divided by
// 2^(2f), and the terms are summed exactly.
func (p Params) SigmoidPoly(x int64) int64 {
	x = p.ClampSigmoidInput(x)
	c0, odd, fc := p.SigmoidCoefficients()
	x2 := p.MulRescale(x, x)
	res := c0
	pow := x // x^1
	for i := 0; i < 5; i++ {
		term := (odd[i] * pow) >> uint(fc)
		res += term
		if i < 4 {
			pow = p.MulRescale(pow, x2)
		}
	}
	return res
}

// SigmoidFloat is the float reference of the same polynomial, used to
// bound the fixed-point error in tests.
func SigmoidFloat(x float64) float64 {
	return 0.5 + 0.2159198015*x - 0.0082176259*math.Pow(x, 3) +
		0.0001825597*math.Pow(x, 5) - 0.0000018848*math.Pow(x, 7) +
		0.0000000072*math.Pow(x, 9)
}

// ReLU applies max(0, v) to a scaled integer.
func ReLU(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// HardThreshold returns 1 when v ≥ threshold, else 0 (both scaled).
func HardThreshold(v, threshold int64) int64 {
	if v >= threshold {
		return 1
	}
	return 0
}

// Average computes the fixed-point mean of scaled values with the same
// multiply-by-reciprocal-and-truncate semantics as the circuit's
// zkAverage gadget: sum · round(2^f/n), rescaled.
func (p Params) Average(vs []int64) int64 {
	if len(vs) == 0 {
		return 0
	}
	var sum int64
	for _, v := range vs {
		sum += v
	}
	recip := int64(math.Round(float64(p.Scale()) / float64(len(vs))))
	return p.MulRescale(sum, recip)
}
