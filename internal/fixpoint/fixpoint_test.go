package fixpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zkrownn/internal/bn254/fr"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Default16
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 3.14159, -123.456, 100.0} {
		v := p.Encode(x)
		back := p.Decode(v)
		if math.Abs(back-x) > 1.0/float64(p.Scale()) {
			t.Fatalf("round trip error too large for %v: got %v", x, back)
		}
	}
}

func TestRescaleFloorSemantics(t *testing.T) {
	p := Params{FracBits: 4, MagBits: 20}
	// 2^4 = 16. Rescale must floor toward -∞, like the circuit gadget.
	cases := map[int64]int64{
		32: 2, 33: 2, 47: 2, 48: 3,
		-32: -2, -33: -3, -47: -3, -48: -3, -49: -4,
		0: 0, 15: 0, -1: -1, -16: -1,
	}
	for in, want := range cases {
		if got := p.Rescale(in); got != want {
			t.Fatalf("Rescale(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMulRescaleApproximatesProduct(t *testing.T) {
	p := Default16
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < 1000; i++ {
		a := rng.Float64()*200 - 100
		b := rng.Float64()*200 - 100
		fa, fb := p.Encode(a), p.Encode(b)
		prod := p.MulRescale(fa, fb)
		got := p.Decode(prod)
		want := a * b
		tol := (math.Abs(a)+math.Abs(b)+1)/float64(p.Scale()) + 1.0/float64(p.Scale())
		if math.Abs(got-want) > tol {
			t.Fatalf("MulRescale(%v, %v) = %v, want ≈ %v", a, b, got, want)
		}
	}
}

func TestFieldRoundTrip(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		v %= 1 << 50
		e := ToField(v)
		back, err := FromField(&e)
		return err == nil && back == v
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// A huge field element must be rejected.
	var big fr.Element
	big.SetUint64(1)
	for i := 0; i < 100; i++ {
		big.Double(&big) // 2^100, not ±small
	}
	if _, err := FromField(&big); err == nil {
		t.Fatal("2^100 accepted as fixed-point value")
	}
}

func TestSigmoidPolyMatchesFloat(t *testing.T) {
	p := Default16
	for x := -4.0; x <= 4.0; x += 0.37 {
		fx := p.Encode(x)
		got := p.Decode(p.SigmoidPoly(fx))
		want := SigmoidFloat(x)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("sigmoid(%v): fixed %v vs float %v", x, got, want)
		}
	}
}

func TestSigmoidApproximatesTrueSigmoid(t *testing.T) {
	// The Chebyshev polynomial should approximate 1/(1+e^-x) on a
	// moderate interval (the paper uses it for thresholding at 0.5, so
	// only the sign of S(x)-0.5 really matters).
	for x := -3.0; x <= 3.0; x += 0.25 {
		approx := SigmoidFloat(x)
		truth := 1.0 / (1.0 + math.Exp(-x))
		if math.Abs(approx-truth) > 0.05 {
			t.Fatalf("Chebyshev deviates at %v: %v vs %v", x, approx, truth)
		}
		// Threshold agreement.
		if (approx >= 0.5) != (truth >= 0.5) {
			t.Fatalf("threshold disagreement at %v", x)
		}
	}
}

func TestReLUAndThreshold(t *testing.T) {
	if ReLU(-5) != 0 || ReLU(0) != 0 || ReLU(7) != 7 {
		t.Fatal("ReLU wrong")
	}
	if HardThreshold(5, 5) != 1 || HardThreshold(4, 5) != 0 || HardThreshold(-1, 0) != 0 {
		t.Fatal("HardThreshold wrong")
	}
}

func TestAverage(t *testing.T) {
	p := Default16
	vs := []int64{p.Encode(1.0), p.Encode(2.0), p.Encode(3.0), p.Encode(6.0)}
	avg := p.Decode(p.Average(vs))
	if math.Abs(avg-3.0) > 0.001 {
		t.Fatalf("Average = %v, want 3.0", avg)
	}
	if p.Average(nil) != 0 {
		t.Fatal("Average(nil) != 0")
	}
	// Non-power-of-two length exercises the reciprocal rounding.
	vs3 := []int64{p.Encode(1.0), p.Encode(2.0), p.Encode(4.0)}
	avg3 := p.Decode(p.Average(vs3))
	if math.Abs(avg3-7.0/3.0) > 0.001 {
		t.Fatalf("Average3 = %v, want %v", avg3, 7.0/3.0)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{FracBits: 0, MagBits: 10},
		{FracBits: 31, MagBits: 40},
		{FracBits: 16, MagBits: 10},
		{FracBits: 16, MagBits: 51}, // exceeds accumulated-value cap
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if err := Default16.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	p := Default16
	xs := []float64{1.5, -2.25, 0}
	enc := p.EncodeSlice(xs)
	dec := p.DecodeSlice(enc)
	for i := range xs {
		if math.Abs(dec[i]-xs[i]) > 1e-4 {
			t.Fatal("slice round trip failed")
		}
	}
	fe := ToFieldSlice(enc)
	for i := range fe {
		v, err := FromField(&fe[i])
		if err != nil || v != enc[i] {
			t.Fatal("field slice round trip failed")
		}
	}
}
