// Package client is the Go client for the ZKROWNN proof service
// (cmd/zkrownn-server): programmatic registration of ownership
// circuits, async proof jobs, and over-the-wire verification.
//
// A model owner registers once, then proves on demand:
//
//	c, _ := client.New("http://localhost:8080")
//	reg, _ := c.RegisterModel(ctx, model, key, client.RegisterOptions{})
//	ticket, _ := c.SubmitProve(ctx, reg.ModelID, nil)
//	job, _ := c.WaitForProof(ctx, ticket.JobID)
//
// Any third party holding only the model ID verifies remotely:
//
//	verdict, _ := c.Verify(ctx, reg.ModelID, job.Proof, job.PublicInputs)
//
// The wire types mirror the server's JSON API (internal/service); the
// end-to-end test at the repository root keeps the two in lockstep.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"zkrownn"
)

// ErrQueueFull is wrapped by SubmitProve when the server sheds load
// (HTTP 429); callers should back off and retry.
var ErrQueueFull = errors.New("client: prove queue full")

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("proof service: %s (HTTP %d)", e.Message, e.Status)
}

// Client talks to one proof service.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the service at baseURL
// (e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("client: empty base URL")
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// RegisterOptions mirrors the circuit parameters of registration.
type RegisterOptions struct {
	// Name is an optional operator-facing label.
	Name string
	// FracBits selects the fixed-point format (0 → server default, 16).
	FracBits int
	// MaxErrors is the BER tolerance θ·N.
	MaxErrors int
	// Committed selects the committed-model circuit variant.
	Committed bool
	// BundleSlots registers a batched extraction circuit with this many
	// suspect-model claim slots (0/1 → single). A K-slot registration
	// proves K ownership claims with one proof per SubmitProveBundle
	// job. Incompatible with Committed.
	BundleSlots int
}

// Registration reports a registered circuit.
type Registration struct {
	ModelID           string                `json:"model_id"`
	Name              string                `json:"name,omitempty"`
	AlreadyRegistered bool                  `json:"already_registered,omitempty"`
	SetupCached       bool                  `json:"setup_cached"`
	Constraints       int                   `json:"constraints"`
	PublicInputs      int                   `json:"public_inputs"`
	Committed         bool                  `json:"committed,omitempty"`
	BundleSlots       int                   `json:"bundle_slots,omitempty"`
	VK                *zkrownn.VerifyingKey `json:"vk"`
}

// ModelInfo describes one registry entry.
type ModelInfo struct {
	ModelID      string `json:"model_id"`
	Name         string `json:"name,omitempty"`
	Committed    bool   `json:"committed,omitempty"`
	BundleSlots  int    `json:"bundle_slots,omitempty"`
	FracBits     int    `json:"frac_bits"`
	MaxErrors    int    `json:"max_errors"`
	Constraints  int    `json:"constraints"`
	PublicInputs int    `json:"public_inputs"`
	CreatedAt    string `json:"created_at"`
	CanProve     bool   `json:"can_prove"`
}

// ModelDetail is a registry entry plus its verifying key.
type ModelDetail struct {
	ModelInfo
	VK *zkrownn.VerifyingKey `json:"vk"`
}

// ProveTicket acknowledges a queued prove job.
type ProveTicket struct {
	JobID      string `json:"job_id"`
	ModelID    string `json:"model_id"`
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
}

// JobStatus reports a prove job; Proof and PublicInputs are set once
// Status is "done".
type JobStatus struct {
	JobID       string  `json:"job_id"`
	ModelID     string  `json:"model_id"`
	Status      string  `json:"status"`
	Error       string  `json:"error,omitempty"`
	SetupCached bool    `json:"setup_cached,omitempty"`
	QueuedMS    float64 `json:"queued_ms,omitempty"`
	// SolveMS is the per-job witness generation (solver-program replay
	// over the circuit compiled at registration).
	SolveMS float64 `json:"solve_ms,omitempty"`
	ProveMS float64 `json:"prove_ms,omitempty"`
	// Claims holds the per-slot ownership verdicts of a bundle job, in
	// slot order (one entry for single-slot registrations).
	Claims       []bool           `json:"claims,omitempty"`
	Proof        *zkrownn.Proof   `json:"proof,omitempty"`
	PublicInputs zkrownn.Instance `json:"public_inputs,omitempty"`
}

// Job states, mirroring the server.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// VerifyResult reports an over-the-wire verification. Claim is the
// conjunction of every slot's verdict; Claims lists them per slot for
// bundle registrations.
type VerifyResult struct {
	Valid     bool   `json:"valid"`
	Claim     bool   `json:"claim"`
	Claims    []bool `json:"claims,omitempty"`
	BatchSize int    `json:"batch_size"`
	Error     string `json:"error,omitempty"`
}

// AggregateResult reports a registry-scale aggregation. When Valid, the
// artifact plus SRS key verify client-side against the model's VK with
// zkrownn.VerifyAggregateOwnership — no trust in the service's verdict
// required. An invalid member yields no artifact; Error names the first
// offending proof index.
type AggregateResult struct {
	Valid     bool                          `json:"valid"`
	Claim     bool                          `json:"claim"`
	Claims    []bool                        `json:"claims,omitempty"`
	Count     int                           `json:"count"`
	BatchSize int                           `json:"batch_size"`
	Aggregate *zkrownn.AggregateProof       `json:"aggregate,omitempty"`
	SRSKey    *zkrownn.AggregateVerifierKey `json:"srs_key,omitempty"`
	Error     string                        `json:"error,omitempty"`
}

// EngineStats mirrors the engine half of /v1/stats.
type EngineStats struct {
	Setups      uint64  `json:"setups"`
	MemHits     uint64  `json:"mem_hits"`
	DiskHits    uint64  `json:"disk_hits"`
	Solves      uint64  `json:"solves"`
	Proves      uint64  `json:"proves"`
	Verifies    uint64  `json:"verifies"`
	Aggregates  uint64  `json:"aggregates"`
	SetupMS     float64 `json:"setup_ms"`
	SolveMS     float64 `json:"solve_ms"`
	ProveMS     float64 `json:"prove_ms"`
	VerifyMS    float64 `json:"verify_ms"`
	AggregateMS float64 `json:"aggregate_ms"`
}

// ServiceStats mirrors the queue/batcher half of /v1/stats.
type ServiceStats struct {
	Models int `json:"models"`
	// CircuitsCompiled counts server-side Algorithm-1 compilations —
	// flat at one per registered architecture however many jobs run.
	CircuitsCompiled      uint64 `json:"circuits_compiled"`
	JobsSubmitted         uint64 `json:"jobs_submitted"`
	JobsRejected          uint64 `json:"jobs_rejected"`
	JobsCompleted         uint64 `json:"jobs_completed"`
	JobsFailed            uint64 `json:"jobs_failed"`
	QueueDepth            int    `json:"queue_depth"`
	QueueCapacity         int    `json:"queue_capacity"`
	VerifyRequests        uint64 `json:"verify_requests"`
	VerifyBatchCalls      uint64 `json:"verify_batch_calls"`
	VerifyBatchedRequests uint64 `json:"verify_batched_requests"`
	VerifyMaxBatch        uint64 `json:"verify_max_batch"`
	VerifyFallbacks       uint64 `json:"verify_fallbacks"`
	AggregateRequests     uint64 `json:"aggregate_requests"`
	AggregateArtifacts    uint64 `json:"aggregate_artifacts"`
	AggregateFallbacks    uint64 `json:"aggregate_fallbacks"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Engine  EngineStats  `json:"engine"`
	Service ServiceStats `json:"service"`
}

// Health pings /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out struct {
		Status string `json:"status"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return err
	}
	if out.Status != "ok" {
		return fmt.Errorf("client: unhealthy service: %q", out.Status)
	}
	return nil
}

// Stats fetches engine + service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	out := new(Stats)
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RegisterModel registers an ownership circuit: the server compiles
// Algorithm 1 for the model + watermark key, runs (or reuses) trusted
// setup, and returns the digest-keyed model ID with the verifying key.
func (c *Client) RegisterModel(ctx context.Context, model *zkrownn.Model, key *zkrownn.WatermarkKey, opts RegisterOptions) (*Registration, error) {
	modelJSON, err := encodeModel(model)
	if err != nil {
		return nil, err
	}
	keyJSON, err := json.Marshal(key)
	if err != nil {
		return nil, err
	}
	req := struct {
		Name        string          `json:"name,omitempty"`
		Model       json.RawMessage `json:"model"`
		Key         json.RawMessage `json:"key"`
		FracBits    int             `json:"frac_bits,omitempty"`
		MaxErrors   int             `json:"max_errors,omitempty"`
		Committed   bool            `json:"committed,omitempty"`
		BundleSlots int             `json:"bundle_slots,omitempty"`
	}{opts.Name, modelJSON, keyJSON, opts.FracBits, opts.MaxErrors, opts.Committed, opts.BundleSlots}
	out := new(Registration)
	if err := c.do(ctx, http.MethodPost, "/v1/models", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the registry.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out []ModelInfo
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Model fetches one registry entry with its verifying key.
func (c *Client) Model(ctx context.Context, modelID string) (*ModelDetail, error) {
	out := new(ModelDetail)
	if err := c.do(ctx, http.MethodGet, "/v1/models/"+modelID, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitProve queues an async ownership-proof job. suspect, when
// non-nil, is the model to prove against (it must share the registered
// architecture); nil proves the registered model. A load-shedding 429
// surfaces as an error wrapping ErrQueueFull.
func (c *Client) SubmitProve(ctx context.Context, modelID string, suspect *zkrownn.Model) (*ProveTicket, error) {
	req := struct {
		SuspectModel json.RawMessage `json:"suspect_model,omitempty"`
	}{}
	if suspect != nil {
		m, err := encodeModel(suspect)
		if err != nil {
			return nil, err
		}
		req.SuspectModel = m
	}
	out := new(ProveTicket)
	err := c.do(ctx, http.MethodPost, "/v1/models/"+modelID+"/prove", req, out)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		return nil, fmt.Errorf("%w: %s", ErrQueueFull, apiErr.Message)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitProveBundle queues one async proof covering every claim slot of
// a bundle registration: suspects[s] is proved in slot s (nil keeps the
// registered model there), and len(suspects) must equal the model's
// BundleSlots. The finished job carries ONE proof plus a per-slot
// verdict vector (JobStatus.Claims).
func (c *Client) SubmitProveBundle(ctx context.Context, modelID string, suspects []*zkrownn.Model) (*ProveTicket, error) {
	req := struct {
		SuspectModels []json.RawMessage `json:"suspect_models,omitempty"`
	}{}
	for _, suspect := range suspects {
		if suspect == nil {
			req.SuspectModels = append(req.SuspectModels, json.RawMessage("null"))
			continue
		}
		m, err := encodeModel(suspect)
		if err != nil {
			return nil, err
		}
		req.SuspectModels = append(req.SuspectModels, m)
	}
	out := new(ProveTicket)
	err := c.do(ctx, http.MethodPost, "/v1/models/"+modelID+"/prove", req, out)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		return nil, fmt.Errorf("%w: %s", ErrQueueFull, apiErr.Message)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Job polls one prove job.
func (c *Client) Job(ctx context.Context, jobID string) (*JobStatus, error) {
	out := new(JobStatus)
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitForProof polls a job until it reaches a terminal state (or ctx
// expires). A failed job returns an error carrying the server's reason.
func (c *Client) WaitForProof(ctx context.Context, jobID string) (*JobStatus, error) {
	const poll = 50 * time.Millisecond
	for {
		js, err := c.Job(ctx, jobID)
		if err != nil {
			return nil, err
		}
		switch js.Status {
		case JobDone:
			return js, nil
		case JobFailed:
			return js, fmt.Errorf("client: job %s failed: %s", jobID, js.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// FetchProofBinary downloads the finished proof in the compact binary
// encoding (the 128-byte artifact a dispute transcript files).
func (c *Client) FetchProofBinary(ctx context.Context, jobID string) (*zkrownn.Proof, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/proof", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	proof := new(zkrownn.Proof)
	if _, err := proof.ReadFrom(resp.Body); err != nil {
		return nil, fmt.Errorf("client: bad proof payload: %w", err)
	}
	return proof, nil
}

// Verify checks an ownership proof over the wire. Concurrent calls for
// one model coalesce server-side into a single batched pairing product;
// VerifyResult.BatchSize reports the fold.
func (c *Client) Verify(ctx context.Context, modelID string, proof *zkrownn.Proof, public zkrownn.Instance) (*VerifyResult, error) {
	req := struct {
		Proof        *zkrownn.Proof   `json:"proof"`
		PublicInputs zkrownn.Instance `json:"public_inputs"`
	}{proof, public}
	out := new(VerifyResult)
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+modelID+"/verify", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Aggregate folds N proofs for one model into a single O(log N)
// aggregation artifact server-side. All proofs must be under modelID's
// verifying key, with publics[i] the instance of proofs[i]. On success
// the result carries the artifact plus the SRS verifier key; audit it
// locally with zkrownn.VerifyAggregateOwnership against the model's VK.
func (c *Client) Aggregate(ctx context.Context, modelID string, proofs []*zkrownn.Proof, publics []zkrownn.Instance) (*AggregateResult, error) {
	req := struct {
		ModelID      string             `json:"model_id"`
		Proofs       []*zkrownn.Proof   `json:"proofs"`
		PublicInputs []zkrownn.Instance `json:"public_inputs"`
	}{modelID, proofs, publics}
	out := new(AggregateResult)
	if err := c.do(ctx, http.MethodPost, "/v1/aggregate", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// --- plumbing ---

func encodeModel(m *zkrownn.Model) (json.RawMessage, error) {
	if m == nil {
		return nil, errors.New("client: nil model")
	}
	var buf bytes.Buffer
	if err := zkrownn.SaveModel(m, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

func decodeAPIError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}
