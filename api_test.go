package zkrownn

import (
	"bytes"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// smallWorkflow drives the whole public API on compact dimensions.
func smallWorkflow(t *testing.T, seed int64) (*Model, *WatermarkKey, *Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds, err := SyntheticMNIST(300, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		ds.X[i] = ds.X[i][:16]
	}
	ds.Dim = 16

	m := NewMLP(16, []int{32}, ds.Classes, rng)
	Train(m, ds, TrainOptions{Epochs: 8, BatchSize: 16, LearningRate: 0.1}, rng)

	key, err := GenerateKey(m, ds, KeyOptions{Bits: 8, Triggers: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := EmbedWatermark(m, key, ds, EmbedOptions{Epochs: 100}, rng); err != nil {
		t.Fatal(err)
	}
	return m, key, ds
}

func TestPublicAPIEndToEnd(t *testing.T) {
	m, key, _ := smallWorkflow(t, 500)
	_, ber := ExtractWatermark(m, key)
	if ber != 0 {
		t.Fatalf("BER %.3f after embedding", ber)
	}

	circuit, pk, vk, proof, err := ProveModelOwnership(m, key, DefaultFixedPoint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pk == nil || vk == nil {
		t.Fatal("missing keys")
	}
	ok, err := VerifyOwnership(vk, proof, PublicInputs(circuit))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ownership not verified")
	}
	if proof.PayloadSize() != 128 {
		t.Fatalf("proof size %d", proof.PayloadSize())
	}
}

func TestPublicAPIRejectsUnwatermarked(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	ds, err := SyntheticMNIST(200, 501)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		ds.X[i] = ds.X[i][:16]
	}
	ds.Dim = 16
	m := NewMLP(16, []int{32}, ds.Classes, rng)
	Train(m, ds, TrainOptions{Epochs: 5, BatchSize: 16, LearningRate: 0.1}, rng)
	key, err := GenerateKey(m, ds, KeyOptions{Bits: 8, Triggers: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ProveModelOwnership(m, key, DefaultFixedPoint, nil); err != ErrNotWatermarked {
		t.Fatalf("expected ErrNotWatermarked, got %v", err)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, key, _ := smallWorkflow(t, 502)
	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model must extract the same watermark.
	b1, ber1 := ExtractWatermark(m, key)
	b2, ber2 := ExtractWatermark(m2, key)
	if ber1 != ber2 {
		t.Fatal("BER changed across serialization")
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("extracted bits changed across serialization")
		}
	}
}

func TestRunPipelineMetrics(t *testing.T) {
	m, key, _ := smallWorkflow(t, 503)
	q, err := Quantize(m, DefaultFixedPoint)
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := BuildOwnershipCircuit(q, key, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(504))
	met, err := RunPipeline(circuit, rng)
	if err != nil {
		t.Fatal(err)
	}
	if met.NbConstraints == 0 || met.ProofSize != 128 || met.SetupTime == 0 {
		t.Fatalf("bad metrics %+v", met)
	}
	if met.VerifyTime == 0 || met.ProveTime == 0 {
		t.Fatal("timings missing")
	}
}

func TestNewModelBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	mlp := NewMNISTMLP(rng)
	if got := len(mlp.Forward(make([]float64, 784))); got != 10 {
		t.Fatalf("MNIST MLP output %d", got)
	}
	cnn := NewCIFAR10CNN(rng)
	if got := len(cnn.Forward(make([]float64, 3*32*32))); got != 10 {
		t.Fatalf("CIFAR CNN output %d", got)
	}
	ds, err := SyntheticCIFAR(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 3*32*32 || ds.Classes != 10 {
		t.Fatal("CIFAR-like dataset shape wrong")
	}
}

func TestCommittedOwnershipAPI(t *testing.T) {
	m, key, _ := smallWorkflow(t, 520)
	q, err := Quantize(m, DefaultFixedPoint)
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := BuildCommittedOwnershipCircuit(q, key, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(521))
	pk, vk, err := Setup(circuit, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProveOwnership(circuit, pk, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := PublicInputs(circuit)
	if len(public) != 2 {
		t.Fatalf("committed circuit has %d public inputs, want 2", len(public))
	}
	if err := VerifyCommittedOwnership(vk, proof, public, q, key.LayerIndex); err != nil {
		t.Fatal(err)
	}
	// The digest the verifier computes must match the circuit's public
	// input.
	d, err := ModelDigest(q, key.LayerIndex)
	if err != nil {
		t.Fatal(err)
	}
	if !public[0].Equal(&d) {
		t.Fatal("digest mismatch")
	}
	// Verification against a tampered model must fail.
	q.Layers[0].W[0]++
	if err := VerifyCommittedOwnership(vk, proof, public, q, key.LayerIndex); err == nil {
		t.Fatal("tampered model accepted")
	}
}

func TestBatchVerifyOwnershipAPI(t *testing.T) {
	m, key, _ := smallWorkflow(t, 522)
	circuit, pk, vk, _, err := ProveModelOwnership(m, key, DefaultFixedPoint, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(523))
	var proofs []*Proof
	var publics [][]fr.Element
	for i := 0; i < 3; i++ {
		p, err := ProveOwnership(circuit, pk, rng)
		if err != nil {
			t.Fatal(err)
		}
		proofs = append(proofs, p)
		publics = append(publics, PublicInputs(circuit))
	}
	ok, err := BatchVerifyOwnership(vk, proofs, publics, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("batch ownership not verified")
	}
	// Corrupt one claim bit: the batch must reject or report claim 0.
	publics[1][len(publics[1])-1].SetZero()
	ok, err = BatchVerifyOwnership(vk, proofs, publics, rng)
	if err == nil && ok {
		t.Fatal("batch with corrupted claim accepted")
	}
}
